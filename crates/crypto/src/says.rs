//! The `says` authentication construct of SeNDlog.
//!
//! Section 2.2 of the paper: *"The says construct is an abstraction for the
//! details of authentication. [...] In a hostile world, says may require
//! digital signatures, while in a more benign world, says may simply append a
//! cleartext principal header to a message — and this will of course be
//! cheaper. The policy writer could additionally provide hints along with
//! rules, indicating that some says are more important than others, e.g. by
//! supporting multiple says operators with different security levels."*
//!
//! [`SaysLevel`] captures exactly that spectrum; [`Authenticator`] produces
//! and checks [`SaysProof`]s for a principal's exported tuples, and reports
//! the wire overhead each level adds so the bandwidth accounting matches the
//! chosen mechanism.

use crate::channel::{
    derive_session_key, ChannelHandshake, ChannelProof, HandshakeTranscript, ReceiverChannel,
    SenderChannel, CHANNEL_PROOF_LEN,
};
use crate::hmac::{hmac_sha256, hmac_verify, TAG_LEN};
use crate::principal::{Keyring, PrincipalId};

/// Strength of the mechanism realising `says`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum SaysLevel {
    /// A cleartext principal header: no cryptographic protection, no
    /// per-tuple CPU cost, 0 extra proof bytes.  (The "benign world" option.)
    #[default]
    Cleartext,
    /// HMAC-SHA-256 with a shared secret: integrity between principals that
    /// share keys, one hash per tuple, 32 proof bytes.
    Hmac,
    /// A session-keyed authenticated channel (see [`crate::channel`]): each
    /// directed link is bootstrapped once by an RSA-signed key-establishment
    /// handshake, then every frame is HMAC'd under the session key with a
    /// monotonic replay counter.  RSA-rooted channel authentication at
    /// near-HMAC steady-state cost — but, unlike per-frame [`SaysLevel::Rsa`]
    /// signatures, individual frames are not non-repudiable, so the level
    /// sits strictly below `Rsa`.
    Session,
    /// RSA signature over SHA-256: full non-repudiable authentication as in
    /// the paper's evaluation, one private-key exponentiation per exported
    /// tuple, `modulus_len` proof bytes.
    Rsa,
}

impl SaysLevel {
    /// All levels, weakest first.
    pub const ALL: [SaysLevel; 4] = [
        SaysLevel::Cleartext,
        SaysLevel::Hmac,
        SaysLevel::Session,
        SaysLevel::Rsa,
    ];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SaysLevel::Cleartext => "cleartext",
            SaysLevel::Hmac => "hmac-sha256",
            SaysLevel::Session => "session-channel",
            SaysLevel::Rsa => "rsa-sha256",
        }
    }
}

/// Proof attached to a `P says fact` assertion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SaysProof {
    /// No proof beyond the claimed principal id.
    Cleartext,
    /// HMAC tag under the asserting principal's MAC secret.
    Hmac([u8; TAG_LEN]),
    /// Per-frame MAC on an established session channel (epoch, monotonic
    /// counter, HMAC tag under the channel's session key).
    Session(ChannelProof),
    /// RSA signature by the asserting principal.
    Rsa(Vec<u8>),
}

impl SaysProof {
    /// Number of bytes this proof adds to a message on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            SaysProof::Cleartext => 0,
            SaysProof::Hmac(_) => TAG_LEN,
            SaysProof::Session(_) => CHANNEL_PROOF_LEN,
            SaysProof::Rsa(sig) => sig.len(),
        }
    }

    /// The level that produced this proof.
    pub fn level(&self) -> SaysLevel {
        match self {
            SaysProof::Cleartext => SaysLevel::Cleartext,
            SaysProof::Hmac(_) => SaysLevel::Hmac,
            SaysProof::Session(_) => SaysLevel::Session,
            SaysProof::Rsa(_) => SaysLevel::Rsa,
        }
    }

    /// Serialises the proof for the wire (tag byte + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            SaysProof::Cleartext => vec![0u8],
            SaysProof::Hmac(tag) => {
                let mut v = Vec::with_capacity(1 + TAG_LEN);
                v.push(1u8);
                v.extend_from_slice(tag);
                v
            }
            SaysProof::Rsa(sig) => {
                let mut v = Vec::with_capacity(3 + sig.len());
                v.push(2u8);
                v.extend_from_slice(&(sig.len() as u16).to_be_bytes());
                v.extend_from_slice(sig);
                v
            }
            SaysProof::Session(proof) => {
                let mut v = Vec::with_capacity(1 + CHANNEL_PROOF_LEN);
                v.push(3u8);
                v.extend_from_slice(&proof.epoch.to_be_bytes());
                v.extend_from_slice(&proof.counter.to_be_bytes());
                v.extend_from_slice(&proof.tag);
                v
            }
        }
    }

    /// Parses a proof serialised by [`Self::to_bytes`]; returns the proof and
    /// the number of bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Option<(SaysProof, usize)> {
        match bytes.first()? {
            0 => Some((SaysProof::Cleartext, 1)),
            1 => {
                if bytes.len() < 1 + TAG_LEN {
                    return None;
                }
                let mut tag = [0u8; TAG_LEN];
                tag.copy_from_slice(&bytes[1..1 + TAG_LEN]);
                Some((SaysProof::Hmac(tag), 1 + TAG_LEN))
            }
            2 => {
                if bytes.len() < 3 {
                    return None;
                }
                let len = u16::from_be_bytes([bytes[1], bytes[2]]) as usize;
                if bytes.len() < 3 + len {
                    return None;
                }
                Some((SaysProof::Rsa(bytes[3..3 + len].to_vec()), 3 + len))
            }
            3 => {
                if bytes.len() < 1 + CHANNEL_PROOF_LEN {
                    return None;
                }
                let epoch = u32::from_be_bytes(bytes[1..5].try_into().expect("4 bytes"));
                let counter = u64::from_be_bytes(bytes[5..13].try_into().expect("8 bytes"));
                let mut tag = [0u8; TAG_LEN];
                tag.copy_from_slice(&bytes[13..13 + TAG_LEN]);
                Some((
                    SaysProof::Session(ChannelProof {
                        epoch,
                        counter,
                        tag,
                    }),
                    1 + CHANNEL_PROOF_LEN,
                ))
            }
            _ => None,
        }
    }
}

/// The canonical signing payload of a multi-tuple shipment frame: every
/// tuple's canonical encoding, concatenated in shipment order.
///
/// Tuple encodings are self-delimiting, so the concatenation is unambiguous
/// without extra framing bytes — and a one-tuple frame signs exactly the
/// bytes a per-tuple assertion used to sign.  One proof over this payload
/// covers every tuple in the frame: signatures (and verifications) scale
/// with frames shipped, not tuples.
pub fn frame_payload<T: AsRef<[u8]>>(tuples: &[T]) -> Vec<u8> {
    let len = tuples.iter().map(|t| t.as_ref().len()).sum();
    let mut payload = Vec::with_capacity(len);
    for t in tuples {
        payload.extend_from_slice(t.as_ref());
    }
    payload
}

/// Domain separator prefixed to every tuple encoding of a *tombstone*
/// (retraction) frame before the frame proof is computed.  Folding the
/// polarity into the signed bytes means a retraction is authenticated at
/// every `says` level exactly like an assertion — and a captured data frame
/// can never be replayed as a deletion of the same tuples (or vice versa),
/// because the two frames prove different canonical payloads.
pub const TOMBSTONE_MARKER: &[u8; 4] = b"\0del";

/// The canonical per-tuple payloads of a tombstone frame: each tuple
/// encoding prefixed with [`TOMBSTONE_MARKER`].  Senders assert (and
/// receivers verify) tombstone frames over these payloads instead of the
/// raw encodings.
pub fn tombstone_payloads<T: AsRef<[u8]>>(tuples: &[T]) -> Vec<Vec<u8>> {
    tuples
        .iter()
        .map(|t| {
            let t = t.as_ref();
            let mut v = Vec::with_capacity(TOMBSTONE_MARKER.len() + t.len());
            v.extend_from_slice(TOMBSTONE_MARKER);
            v.extend_from_slice(t);
            v
        })
        .collect()
}

/// A `P says payload` assertion carrying its proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaysAssertion {
    /// The asserting principal.
    pub principal: PrincipalId,
    /// Proof that `principal` said the payload.
    pub proof: SaysProof,
}

impl SaysAssertion {
    /// Bytes this assertion adds to a message (principal id + proof).
    pub fn wire_len(&self) -> usize {
        4 + self.proof.to_bytes().len()
    }
}

/// Errors raised when verifying a `says` assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaysError {
    /// The proof does not match the required level (e.g. a cleartext header
    /// where the importing context demands signatures).
    InsufficientLevel {
        /// The minimum level the importing context demands.
        required: SaysLevel,
        /// The level actually attached to the assertion.
        got: SaysLevel,
    },
    /// The asserting principal is not in the verifier's key directory.
    UnknownPrincipal(PrincipalId),
    /// The cryptographic check failed.
    InvalidProof(PrincipalId),
    /// A session-channel frame carried a counter at or below the last
    /// accepted one: a replayed (or reordered) frame.
    ReplayedFrame {
        /// The principal the channel speaks for.
        principal: PrincipalId,
        /// The stale counter the frame carried.
        counter: u64,
        /// The highest counter already accepted on the channel.
        last_accepted: u64,
    },
    /// A session-channel handshake failed validation: the transcript
    /// signature does not verify under the claimed initiator's public key,
    /// or the verifier is not the transcript's named recipient.
    BadHandshake(PrincipalId),
    /// A (validly signed) handshake carried an epoch at or below the
    /// channel already established with its initiator: a replayed old
    /// handshake, which must not roll the channel — and its replay
    /// counter — back.
    ReplayedHandshake {
        /// The initiating principal.
        principal: PrincipalId,
        /// The stale epoch the handshake carried.
        epoch: u32,
        /// The epoch of the channel already installed.
        current_epoch: u32,
    },
    /// A session-level proof arrived but no channel is established with the
    /// asserting principal (dropped or not-yet-delivered handshake).
    NoChannel(PrincipalId),
}

impl std::fmt::Display for SaysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaysError::InsufficientLevel { required, got } => write!(
                f,
                "says proof level {} is weaker than required level {}",
                got.name(),
                required.name()
            ),
            SaysError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            SaysError::InvalidProof(p) => write!(f, "invalid says proof from {p}"),
            SaysError::ReplayedFrame {
                principal,
                counter,
                last_accepted,
            } => write!(
                f,
                "replayed frame from {principal}: counter {counter} not above {last_accepted}"
            ),
            SaysError::BadHandshake(p) => write!(f, "invalid channel handshake from {p}"),
            SaysError::ReplayedHandshake {
                principal,
                epoch,
                current_epoch,
            } => write!(
                f,
                "replayed handshake from {principal}: epoch {epoch} not above {current_epoch}"
            ),
            SaysError::NoChannel(p) => write!(f, "no established channel with {p}"),
        }
    }
}

impl std::error::Error for SaysError {}

/// Produces and verifies `says` assertions on behalf of one principal.
#[derive(Clone, Debug)]
pub struct Authenticator {
    keyring: Keyring,
    level: SaysLevel,
}

impl Authenticator {
    /// Creates an authenticator that asserts at `level` using `keyring`.
    pub fn new(keyring: Keyring, level: SaysLevel) -> Self {
        Authenticator { keyring, level }
    }

    /// The level this authenticator asserts at.
    pub fn level(&self) -> SaysLevel {
        self.level
    }

    /// The principal on whose behalf assertions are made.
    pub fn principal(&self) -> PrincipalId {
        self.keyring.owner()
    }

    /// The keyring backing this authenticator.
    pub fn keyring(&self) -> &Keyring {
        &self.keyring
    }

    /// Produces `self.principal() says payload`.
    ///
    /// # Panics
    ///
    /// At [`SaysLevel::Session`] single-shot assertions do not exist — every
    /// proof is bound to an established channel's key and counter.  Open a
    /// channel with [`Authenticator::open_channel`] and assert with
    /// [`Authenticator::assert_frame_on`] instead.
    pub fn assert(&self, payload: &[u8]) -> SaysAssertion {
        let proof = match self.level {
            SaysLevel::Cleartext => SaysProof::Cleartext,
            SaysLevel::Hmac => SaysProof::Hmac(hmac_sha256(self.keyring.own_mac_secret(), payload)),
            SaysLevel::Session => {
                panic!("session-level says requires a channel: use assert_frame_on")
            }
            SaysLevel::Rsa => SaysProof::Rsa(self.keyring.rsa_keypair().sign(payload)),
        };
        SaysAssertion {
            principal: self.keyring.owner(),
            proof,
        }
    }

    /// Produces `self.principal() says frame` for a multi-tuple shipment
    /// frame: one proof over the canonical concatenated payload
    /// ([`frame_payload`]) covers every tuple.
    pub fn assert_frame<T: AsRef<[u8]>>(&self, tuples: &[T]) -> SaysAssertion {
        self.assert(&frame_payload(tuples))
    }

    /// Verifies that `assertion.principal says frame` — a single check
    /// covering every tuple shipped in the frame.
    pub fn verify_frame<T: AsRef<[u8]>>(
        &self,
        tuples: &[T],
        assertion: &SaysAssertion,
    ) -> Result<(), SaysError> {
        self.verify(&frame_payload(tuples), assertion)
    }

    /// Initiates a session channel to `dst` at `epoch`: derives a fresh
    /// HMAC-SHA-256 session key from the transcript and signs the transcript
    /// with this principal's RSA key (one private-key exponentiation — the
    /// only RSA work the channel ever costs the sender).
    ///
    /// Returns the handshake to ship to `dst` and the sender half of the
    /// channel, valid for `rebind_after` frames before it must be rebound at
    /// the next epoch.
    pub fn open_channel(
        &self,
        dst: PrincipalId,
        epoch: u32,
        rebind_after: u64,
    ) -> (ChannelHandshake, SenderChannel) {
        let transcript = HandshakeTranscript {
            src: self.keyring.owner(),
            dst,
            epoch,
        };
        let key = derive_session_key(self.keyring.own_mac_secret(), &transcript);
        let signature = self.keyring.rsa_keypair().sign(&transcript.encode());
        (
            ChannelHandshake {
                transcript,
                signature,
            },
            SenderChannel::new(key, transcript, rebind_after),
        )
    }

    /// Accepts a rebind of an already-established channel: like
    /// [`Authenticator::accept_channel`], but additionally requires the
    /// handshake to come from the current channel's peer at a strictly
    /// greater epoch.  Without this check a recorded old handshake —
    /// validly signed forever — could roll the channel (and its replay
    /// counter) back and resurrect every frame captured under the old key.
    pub fn accept_rebind(
        &self,
        handshake: &ChannelHandshake,
        current: &ReceiverChannel,
    ) -> Result<ReceiverChannel, SaysError> {
        let transcript = &handshake.transcript;
        if transcript.src != current.peer() {
            return Err(SaysError::BadHandshake(transcript.src));
        }
        if transcript.epoch <= current.epoch() {
            return Err(SaysError::ReplayedHandshake {
                principal: transcript.src,
                epoch: transcript.epoch,
                current_epoch: current.epoch(),
            });
        }
        self.accept_channel(handshake)
    }

    /// Accepts a key-establishment handshake: checks that this principal is
    /// the named recipient and that the transcript signature verifies under
    /// the initiator's public key (one public-key exponentiation — the only
    /// RSA work the channel ever costs the receiver), then derives the
    /// session key and returns the receiver half of the channel.
    ///
    /// This is the first-contact path; when a channel with the initiator
    /// already exists, use [`Authenticator::accept_rebind`] so a replayed
    /// old handshake cannot roll the channel back.
    pub fn accept_channel(
        &self,
        handshake: &ChannelHandshake,
    ) -> Result<ReceiverChannel, SaysError> {
        let transcript = &handshake.transcript;
        let src = transcript.src;
        let key = self
            .keyring
            .public_key_of(src)
            .ok_or(SaysError::UnknownPrincipal(src))?;
        if transcript.dst != self.keyring.owner()
            || !key.verify(&transcript.encode(), &handshake.signature)
        {
            return Err(SaysError::BadHandshake(src));
        }
        let secret = self
            .keyring
            .mac_secret_of(src)
            .ok_or(SaysError::UnknownPrincipal(src))?;
        Ok(ReceiverChannel::new(
            derive_session_key(secret, transcript),
            *transcript,
        ))
    }

    /// Produces `self.principal() says frame` on an established session
    /// channel: one HMAC over the canonical concatenated payload, bound to
    /// the channel's epoch and next counter value.
    pub fn assert_frame_on<T: AsRef<[u8]>>(
        &self,
        channel: &mut SenderChannel,
        tuples: &[T],
    ) -> SaysAssertion {
        SaysAssertion {
            principal: self.keyring.owner(),
            proof: SaysProof::Session(channel.mac_frame(&frame_payload(tuples))),
        }
    }

    /// Verifies a session-channel frame assertion against `required`: the
    /// assertion must be a [`SaysProof::Session`] from the channel's peer at
    /// the current epoch, with a strictly advancing counter and a valid MAC.
    pub fn verify_frame_on<T: AsRef<[u8]>>(
        &self,
        channel: &mut ReceiverChannel,
        tuples: &[T],
        assertion: &SaysAssertion,
        required: SaysLevel,
    ) -> Result<(), SaysError> {
        let got = assertion.proof.level();
        if got < required {
            return Err(SaysError::InsufficientLevel { required, got });
        }
        let SaysProof::Session(proof) = &assertion.proof else {
            // A stronger stateless proof (Rsa) is acceptable on a channel
            // link; check it the stateless way.
            return self.verify_at_level(&frame_payload(tuples), assertion, required);
        };
        if assertion.principal != channel.peer() {
            return Err(SaysError::InvalidProof(assertion.principal));
        }
        channel.verify_frame(&frame_payload(tuples), proof)
    }

    /// Verifies that `assertion.principal says payload`, requiring at least
    /// this authenticator's configured level.
    pub fn verify(&self, payload: &[u8], assertion: &SaysAssertion) -> Result<(), SaysError> {
        self.verify_at_level(payload, assertion, self.level)
    }

    /// Verifies an assertion against an explicit minimum level.
    pub fn verify_at_level(
        &self,
        payload: &[u8],
        assertion: &SaysAssertion,
        required: SaysLevel,
    ) -> Result<(), SaysError> {
        let got = assertion.proof.level();
        if got < required {
            return Err(SaysError::InsufficientLevel { required, got });
        }
        match &assertion.proof {
            SaysProof::Cleartext => Ok(()),
            // Channel proofs are only checkable against the per-channel
            // replay state; route them through `verify_frame_on`.
            SaysProof::Session(_) => Err(SaysError::NoChannel(assertion.principal)),
            SaysProof::Hmac(tag) => {
                let secret = self
                    .keyring
                    .mac_secret_of(assertion.principal)
                    .ok_or(SaysError::UnknownPrincipal(assertion.principal))?;
                if hmac_verify(secret, payload, tag) {
                    Ok(())
                } else {
                    Err(SaysError::InvalidProof(assertion.principal))
                }
            }
            SaysProof::Rsa(sig) => {
                let key = self
                    .keyring
                    .public_key_of(assertion.principal)
                    .ok_or(SaysError::UnknownPrincipal(assertion.principal))?;
                if key.verify(payload, sig) {
                    Ok(())
                } else {
                    Err(SaysError::InvalidProof(assertion.principal))
                }
            }
        }
    }

    /// Number of proof bytes this authenticator adds per exported tuple.
    pub fn proof_overhead(&self) -> usize {
        match self.level {
            SaysLevel::Cleartext => 0,
            SaysLevel::Hmac => TAG_LEN,
            SaysLevel::Session => CHANNEL_PROOF_LEN,
            SaysLevel::Rsa => self.keyring.rsa_keypair().signature_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{KeyAuthority, Principal};

    fn setup(level: SaysLevel) -> (Authenticator, Authenticator) {
        let principals = vec![Principal::new(0u32, "a"), Principal::new(1u32, "b")];
        let auth = KeyAuthority::provision(&principals, 11).unwrap();
        let a = Authenticator::new(auth.keyring_for(PrincipalId(0)).unwrap(), level);
        let b = Authenticator::new(auth.keyring_for(PrincipalId(1)).unwrap(), level);
        (a, b)
    }

    #[test]
    fn cleartext_round_trip() {
        let (a, b) = setup(SaysLevel::Cleartext);
        let assertion = a.assert(b"link(a,b)");
        assert_eq!(assertion.proof, SaysProof::Cleartext);
        assert_eq!(assertion.proof.wire_len(), 0);
        assert!(b.verify(b"link(a,b)", &assertion).is_ok());
        // Cleartext offers no integrity: a different payload also "verifies".
        assert!(b.verify(b"link(a,c)", &assertion).is_ok());
    }

    #[test]
    fn hmac_round_trip_and_tamper_detection() {
        let (a, b) = setup(SaysLevel::Hmac);
        let assertion = a.assert(b"reachable(a,c)");
        assert_eq!(assertion.proof.wire_len(), TAG_LEN);
        assert!(b.verify(b"reachable(a,c)", &assertion).is_ok());
        assert_eq!(
            b.verify(b"reachable(a,d)", &assertion),
            Err(SaysError::InvalidProof(PrincipalId(0)))
        );
    }

    #[test]
    fn rsa_round_trip_and_spoof_detection() {
        let (a, b) = setup(SaysLevel::Rsa);
        let assertion = a.assert(b"bestPath(a,c,[a,b,c],2)");
        assert!(assertion.proof.wire_len() >= 64);
        assert!(b.verify(b"bestPath(a,c,[a,b,c],2)", &assertion).is_ok());

        // A spoofed assertion claiming to come from b but signed by a fails.
        let spoofed = SaysAssertion {
            principal: PrincipalId(1),
            proof: assertion.proof.clone(),
        };
        assert_eq!(
            b.verify(b"bestPath(a,c,[a,b,c],2)", &spoofed),
            Err(SaysError::InvalidProof(PrincipalId(1)))
        );
    }

    #[test]
    fn tombstone_payloads_are_domain_separated_at_every_level() {
        let tuples = [b"link(a,b)".to_vec(), b"reachable(a,c)".to_vec()];
        let tombstones = tombstone_payloads(&tuples);
        assert_eq!(tombstones.len(), 2);
        for (t, d) in tombstones.iter().zip(&tuples) {
            assert!(t.starts_with(TOMBSTONE_MARKER));
            assert_eq!(&t[TOMBSTONE_MARKER.len()..], &d[..]);
        }
        // A captured data-frame proof never verifies as a tombstone of the
        // same tuples, and vice versa, wherever the proof has integrity.
        for level in [SaysLevel::Hmac, SaysLevel::Rsa] {
            let (a, b) = setup(level);
            let data_proof = a.assert_frame(&tuples);
            let tomb_proof = a.assert_frame(&tombstones);
            assert!(b.verify_frame(&tuples, &data_proof).is_ok());
            assert!(b.verify_frame(&tombstones, &tomb_proof).is_ok());
            assert!(b.verify_frame(&tombstones, &data_proof).is_err());
            assert!(b.verify_frame(&tuples, &tomb_proof).is_err());
        }
        // Session channels: the polarity is folded into the MAC'd payload.
        let (a, b) = setup(SaysLevel::Session);
        let (handshake, mut tx) = a.open_channel(b.principal(), 0, 16);
        let mut rx = b.accept_channel(&handshake).unwrap();
        let proof = a.assert_frame_on(&mut tx, &tombstones);
        assert_eq!(
            b.verify_frame_on(&mut rx, &tuples, &proof, SaysLevel::Session),
            Err(SaysError::InvalidProof(a.principal()))
        );
        // The genuine tombstone frame still verifies: the forged attempt
        // burned nothing (rejected frames do not advance the counter).
        assert!(b
            .verify_frame_on(&mut rx, &tombstones, &proof, SaysLevel::Session)
            .is_ok());
    }

    #[test]
    fn level_ordering_is_enforced() {
        let (a, b) = setup(SaysLevel::Cleartext);
        let weak = a.assert(b"x");
        assert_eq!(
            b.verify_at_level(b"x", &weak, SaysLevel::Rsa),
            Err(SaysError::InsufficientLevel {
                required: SaysLevel::Rsa,
                got: SaysLevel::Cleartext
            })
        );
        // A stronger proof satisfies a weaker requirement.
        let (a_rsa, b_rsa) = setup(SaysLevel::Rsa);
        let strong = a_rsa.assert(b"x");
        assert!(b_rsa
            .verify_at_level(b"x", &strong, SaysLevel::Hmac)
            .is_ok());
    }

    #[test]
    fn frame_signatures_cover_every_tuple_at_every_level() {
        let tuples: Vec<&[u8]> = vec![b"link(a,b)", b"reachable(a,c)", b"bestPath(a,c,2)"];
        for level in SaysLevel::ALL {
            let (a, b) = setup(level);
            if level == SaysLevel::Session {
                // Session proofs live on a channel; one MAC still covers the
                // whole frame.
                let (handshake, mut tx) = a.open_channel(b.principal(), 0, 16);
                let mut rx = b.accept_channel(&handshake).unwrap();
                let assertion = a.assert_frame_on(&mut tx, &tuples);
                assert_eq!(assertion.proof.wire_len(), a.proof_overhead());
                assert!(b
                    .verify_frame_on(&mut rx, &tuples, &assertion, level)
                    .is_ok());
                continue;
            }
            let assertion = a.assert_frame(&tuples);
            // One proof; its size does not scale with the tuple count.
            assert_eq!(assertion.proof.wire_len(), a.proof_overhead());
            assert!(b.verify_frame(&tuples, &assertion).is_ok());
            // A one-tuple frame signs exactly the per-tuple payload.
            let single = a.assert_frame(&tuples[..1]);
            assert!(b.verify(b"link(a,b)", &single).is_ok());
        }
    }

    #[test]
    fn tampered_frames_fail_verification() {
        let tuples: Vec<&[u8]> = vec![b"link(a,b)", b"reachable(a,c)"];
        let (a, b) = setup(SaysLevel::Rsa);
        let assertion = a.assert_frame(&tuples);
        // Altering any tuple, dropping one, or reordering breaks the proof.
        let altered: Vec<&[u8]> = vec![b"link(a,b)", b"reachable(a,d)"];
        assert!(b.verify_frame(&altered, &assertion).is_err());
        assert!(b.verify_frame(&tuples[..1], &assertion).is_err());
        let reordered: Vec<&[u8]> = vec![b"reachable(a,c)", b"link(a,b)"];
        assert!(b.verify_frame(&reordered, &assertion).is_err());
        assert_eq!(frame_payload(&tuples), b"link(a,b)reachable(a,c)".to_vec());
    }

    #[test]
    fn unknown_principal_is_rejected() {
        let (a, b) = setup(SaysLevel::Rsa);
        let mut assertion = a.assert(b"y");
        assertion.principal = PrincipalId(42);
        assert_eq!(
            b.verify(b"y", &assertion),
            Err(SaysError::UnknownPrincipal(PrincipalId(42)))
        );
    }

    #[test]
    fn proof_serialisation_roundtrip() {
        let (a, _) = setup(SaysLevel::Rsa);
        for level in SaysLevel::ALL {
            let auth = Authenticator::new(a.keyring.clone(), level);
            let proof = if level == SaysLevel::Session {
                let (_, mut tx) = auth.open_channel(PrincipalId(1), 7, 16);
                auth.assert_frame_on(&mut tx, &[b"payload"]).proof
            } else {
                auth.assert(b"payload").proof
            };
            let bytes = proof.to_bytes();
            let (parsed, consumed) = SaysProof::from_bytes(&bytes).unwrap();
            assert_eq!(parsed, proof);
            assert_eq!(consumed, bytes.len());
        }
        assert!(SaysProof::from_bytes(&[]).is_none());
        assert!(SaysProof::from_bytes(&[9]).is_none());
        assert!(SaysProof::from_bytes(&[1, 0, 0]).is_none());
        assert!(SaysProof::from_bytes(&[2, 0, 10, 1]).is_none());
        assert!(SaysProof::from_bytes(&[3, 0, 0]).is_none());
    }

    #[test]
    fn overhead_reflects_level() {
        let (a_clear, _) = setup(SaysLevel::Cleartext);
        let (a_hmac, _) = setup(SaysLevel::Hmac);
        let (a_rsa, _) = setup(SaysLevel::Rsa);
        assert_eq!(a_clear.proof_overhead(), 0);
        assert_eq!(a_hmac.proof_overhead(), TAG_LEN);
        assert_eq!(
            a_rsa.proof_overhead(),
            a_rsa.keyring.rsa_keypair().signature_len()
        );
        assert!(a_rsa.proof_overhead() > a_hmac.proof_overhead());
    }

    #[test]
    fn levels_are_ordered_weak_to_strong() {
        assert!(SaysLevel::Cleartext < SaysLevel::Hmac);
        // Channel authentication is RSA-rooted but frames are not
        // individually non-repudiable, so Session sits below Rsa.
        assert!(SaysLevel::Hmac < SaysLevel::Session);
        assert!(SaysLevel::Session < SaysLevel::Rsa);
        assert_eq!(SaysLevel::default(), SaysLevel::Cleartext);
        assert_eq!(SaysLevel::ALL.len(), 4);
    }

    #[test]
    fn session_proofs_are_refused_where_rsa_is_demanded() {
        let (a, b) = setup(SaysLevel::Session);
        let (handshake, mut tx) = a.open_channel(b.principal(), 0, 16);
        let mut rx = b.accept_channel(&handshake).unwrap();
        let tuples: Vec<&[u8]> = vec![b"reachable(a,c)"];
        let assertion = a.assert_frame_on(&mut tx, &tuples);
        // An importing context demanding full non-repudiation refuses the
        // channel MAC...
        assert_eq!(
            b.verify_frame_on(&mut rx, &tuples, &assertion, SaysLevel::Rsa),
            Err(SaysError::InsufficientLevel {
                required: SaysLevel::Rsa,
                got: SaysLevel::Session
            })
        );
        // ...and the stateless verifier never accepts a channel proof.
        assert_eq!(
            b.verify_at_level(b"reachable(a,c)", &assertion, SaysLevel::Hmac),
            Err(SaysError::NoChannel(PrincipalId(0)))
        );
        // A channel link accepts a stronger stateless (Rsa) proof.
        let (a_rsa, _) = setup(SaysLevel::Rsa);
        let strong = a_rsa.assert_frame(&tuples);
        assert!(b
            .verify_frame_on(&mut rx, &tuples, &strong, SaysLevel::Session)
            .is_ok());
        // A weaker stateless proof is still insufficient on that link.
        let (a_hmac, _) = setup(SaysLevel::Hmac);
        let weak = a_hmac.assert_frame(&tuples);
        assert_eq!(
            b.verify_frame_on(&mut rx, &tuples, &weak, SaysLevel::Session),
            Err(SaysError::InsufficientLevel {
                required: SaysLevel::Session,
                got: SaysLevel::Hmac
            })
        );
    }
}
