//! The `says` authentication construct of SeNDlog.
//!
//! Section 2.2 of the paper: *"The says construct is an abstraction for the
//! details of authentication. [...] In a hostile world, says may require
//! digital signatures, while in a more benign world, says may simply append a
//! cleartext principal header to a message — and this will of course be
//! cheaper. The policy writer could additionally provide hints along with
//! rules, indicating that some says are more important than others, e.g. by
//! supporting multiple says operators with different security levels."*
//!
//! [`SaysLevel`] captures exactly that spectrum; [`Authenticator`] produces
//! and checks [`SaysProof`]s for a principal's exported tuples, and reports
//! the wire overhead each level adds so the bandwidth accounting matches the
//! chosen mechanism.

use crate::hmac::{hmac_sha256, hmac_verify, TAG_LEN};
use crate::principal::{Keyring, PrincipalId};

/// Strength of the mechanism realising `says`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Default)]
pub enum SaysLevel {
    /// A cleartext principal header: no cryptographic protection, no
    /// per-tuple CPU cost, 0 extra proof bytes.  (The "benign world" option.)
    #[default]
    Cleartext,
    /// HMAC-SHA-256 with a shared secret: integrity between principals that
    /// share keys, one hash per tuple, 32 proof bytes.
    Hmac,
    /// RSA signature over SHA-256: full non-repudiable authentication as in
    /// the paper's evaluation, one private-key exponentiation per exported
    /// tuple, `modulus_len` proof bytes.
    Rsa,
}

impl SaysLevel {
    /// All levels, weakest first.
    pub const ALL: [SaysLevel; 3] = [SaysLevel::Cleartext, SaysLevel::Hmac, SaysLevel::Rsa];

    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SaysLevel::Cleartext => "cleartext",
            SaysLevel::Hmac => "hmac-sha256",
            SaysLevel::Rsa => "rsa-sha256",
        }
    }
}

/// Proof attached to a `P says fact` assertion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SaysProof {
    /// No proof beyond the claimed principal id.
    Cleartext,
    /// HMAC tag under the asserting principal's MAC secret.
    Hmac([u8; TAG_LEN]),
    /// RSA signature by the asserting principal.
    Rsa(Vec<u8>),
}

impl SaysProof {
    /// Number of bytes this proof adds to a message on the wire.
    pub fn wire_len(&self) -> usize {
        match self {
            SaysProof::Cleartext => 0,
            SaysProof::Hmac(_) => TAG_LEN,
            SaysProof::Rsa(sig) => sig.len(),
        }
    }

    /// The level that produced this proof.
    pub fn level(&self) -> SaysLevel {
        match self {
            SaysProof::Cleartext => SaysLevel::Cleartext,
            SaysProof::Hmac(_) => SaysLevel::Hmac,
            SaysProof::Rsa(_) => SaysLevel::Rsa,
        }
    }

    /// Serialises the proof for the wire (tag byte + payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            SaysProof::Cleartext => vec![0u8],
            SaysProof::Hmac(tag) => {
                let mut v = Vec::with_capacity(1 + TAG_LEN);
                v.push(1u8);
                v.extend_from_slice(tag);
                v
            }
            SaysProof::Rsa(sig) => {
                let mut v = Vec::with_capacity(3 + sig.len());
                v.push(2u8);
                v.extend_from_slice(&(sig.len() as u16).to_be_bytes());
                v.extend_from_slice(sig);
                v
            }
        }
    }

    /// Parses a proof serialised by [`Self::to_bytes`]; returns the proof and
    /// the number of bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Option<(SaysProof, usize)> {
        match bytes.first()? {
            0 => Some((SaysProof::Cleartext, 1)),
            1 => {
                if bytes.len() < 1 + TAG_LEN {
                    return None;
                }
                let mut tag = [0u8; TAG_LEN];
                tag.copy_from_slice(&bytes[1..1 + TAG_LEN]);
                Some((SaysProof::Hmac(tag), 1 + TAG_LEN))
            }
            2 => {
                if bytes.len() < 3 {
                    return None;
                }
                let len = u16::from_be_bytes([bytes[1], bytes[2]]) as usize;
                if bytes.len() < 3 + len {
                    return None;
                }
                Some((SaysProof::Rsa(bytes[3..3 + len].to_vec()), 3 + len))
            }
            _ => None,
        }
    }
}

/// The canonical signing payload of a multi-tuple shipment frame: every
/// tuple's canonical encoding, concatenated in shipment order.
///
/// Tuple encodings are self-delimiting, so the concatenation is unambiguous
/// without extra framing bytes — and a one-tuple frame signs exactly the
/// bytes a per-tuple assertion used to sign.  One proof over this payload
/// covers every tuple in the frame: signatures (and verifications) scale
/// with frames shipped, not tuples.
pub fn frame_payload<T: AsRef<[u8]>>(tuples: &[T]) -> Vec<u8> {
    let len = tuples.iter().map(|t| t.as_ref().len()).sum();
    let mut payload = Vec::with_capacity(len);
    for t in tuples {
        payload.extend_from_slice(t.as_ref());
    }
    payload
}

/// A `P says payload` assertion carrying its proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SaysAssertion {
    /// The asserting principal.
    pub principal: PrincipalId,
    /// Proof that `principal` said the payload.
    pub proof: SaysProof,
}

impl SaysAssertion {
    /// Bytes this assertion adds to a message (principal id + proof).
    pub fn wire_len(&self) -> usize {
        4 + self.proof.to_bytes().len()
    }
}

/// Errors raised when verifying a `says` assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SaysError {
    /// The proof does not match the required level (e.g. a cleartext header
    /// where the importing context demands signatures).
    InsufficientLevel {
        /// The minimum level the importing context demands.
        required: SaysLevel,
        /// The level actually attached to the assertion.
        got: SaysLevel,
    },
    /// The asserting principal is not in the verifier's key directory.
    UnknownPrincipal(PrincipalId),
    /// The cryptographic check failed.
    InvalidProof(PrincipalId),
}

impl std::fmt::Display for SaysError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaysError::InsufficientLevel { required, got } => write!(
                f,
                "says proof level {} is weaker than required level {}",
                got.name(),
                required.name()
            ),
            SaysError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            SaysError::InvalidProof(p) => write!(f, "invalid says proof from {p}"),
        }
    }
}

impl std::error::Error for SaysError {}

/// Produces and verifies `says` assertions on behalf of one principal.
#[derive(Clone, Debug)]
pub struct Authenticator {
    keyring: Keyring,
    level: SaysLevel,
}

impl Authenticator {
    /// Creates an authenticator that asserts at `level` using `keyring`.
    pub fn new(keyring: Keyring, level: SaysLevel) -> Self {
        Authenticator { keyring, level }
    }

    /// The level this authenticator asserts at.
    pub fn level(&self) -> SaysLevel {
        self.level
    }

    /// The principal on whose behalf assertions are made.
    pub fn principal(&self) -> PrincipalId {
        self.keyring.owner()
    }

    /// Produces `self.principal() says payload`.
    pub fn assert(&self, payload: &[u8]) -> SaysAssertion {
        let proof = match self.level {
            SaysLevel::Cleartext => SaysProof::Cleartext,
            SaysLevel::Hmac => SaysProof::Hmac(hmac_sha256(self.keyring.own_mac_secret(), payload)),
            SaysLevel::Rsa => SaysProof::Rsa(self.keyring.rsa_keypair().sign(payload)),
        };
        SaysAssertion {
            principal: self.keyring.owner(),
            proof,
        }
    }

    /// Produces `self.principal() says frame` for a multi-tuple shipment
    /// frame: one proof over the canonical concatenated payload
    /// ([`frame_payload`]) covers every tuple.
    pub fn assert_frame<T: AsRef<[u8]>>(&self, tuples: &[T]) -> SaysAssertion {
        self.assert(&frame_payload(tuples))
    }

    /// Verifies that `assertion.principal says frame` — a single check
    /// covering every tuple shipped in the frame.
    pub fn verify_frame<T: AsRef<[u8]>>(
        &self,
        tuples: &[T],
        assertion: &SaysAssertion,
    ) -> Result<(), SaysError> {
        self.verify(&frame_payload(tuples), assertion)
    }

    /// Verifies that `assertion.principal says payload`, requiring at least
    /// this authenticator's configured level.
    pub fn verify(&self, payload: &[u8], assertion: &SaysAssertion) -> Result<(), SaysError> {
        self.verify_at_level(payload, assertion, self.level)
    }

    /// Verifies an assertion against an explicit minimum level.
    pub fn verify_at_level(
        &self,
        payload: &[u8],
        assertion: &SaysAssertion,
        required: SaysLevel,
    ) -> Result<(), SaysError> {
        let got = assertion.proof.level();
        if got < required {
            return Err(SaysError::InsufficientLevel { required, got });
        }
        match &assertion.proof {
            SaysProof::Cleartext => Ok(()),
            SaysProof::Hmac(tag) => {
                let secret = self
                    .keyring
                    .mac_secret_of(assertion.principal)
                    .ok_or(SaysError::UnknownPrincipal(assertion.principal))?;
                if hmac_verify(secret, payload, tag) {
                    Ok(())
                } else {
                    Err(SaysError::InvalidProof(assertion.principal))
                }
            }
            SaysProof::Rsa(sig) => {
                let key = self
                    .keyring
                    .public_key_of(assertion.principal)
                    .ok_or(SaysError::UnknownPrincipal(assertion.principal))?;
                if key.verify(payload, sig) {
                    Ok(())
                } else {
                    Err(SaysError::InvalidProof(assertion.principal))
                }
            }
        }
    }

    /// Number of proof bytes this authenticator adds per exported tuple.
    pub fn proof_overhead(&self) -> usize {
        match self.level {
            SaysLevel::Cleartext => 0,
            SaysLevel::Hmac => TAG_LEN,
            SaysLevel::Rsa => self.keyring.rsa_keypair().signature_len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::principal::{KeyAuthority, Principal};

    fn setup(level: SaysLevel) -> (Authenticator, Authenticator) {
        let principals = vec![Principal::new(0u32, "a"), Principal::new(1u32, "b")];
        let auth = KeyAuthority::provision(&principals, 11).unwrap();
        let a = Authenticator::new(auth.keyring_for(PrincipalId(0)).unwrap(), level);
        let b = Authenticator::new(auth.keyring_for(PrincipalId(1)).unwrap(), level);
        (a, b)
    }

    #[test]
    fn cleartext_round_trip() {
        let (a, b) = setup(SaysLevel::Cleartext);
        let assertion = a.assert(b"link(a,b)");
        assert_eq!(assertion.proof, SaysProof::Cleartext);
        assert_eq!(assertion.proof.wire_len(), 0);
        assert!(b.verify(b"link(a,b)", &assertion).is_ok());
        // Cleartext offers no integrity: a different payload also "verifies".
        assert!(b.verify(b"link(a,c)", &assertion).is_ok());
    }

    #[test]
    fn hmac_round_trip_and_tamper_detection() {
        let (a, b) = setup(SaysLevel::Hmac);
        let assertion = a.assert(b"reachable(a,c)");
        assert_eq!(assertion.proof.wire_len(), TAG_LEN);
        assert!(b.verify(b"reachable(a,c)", &assertion).is_ok());
        assert_eq!(
            b.verify(b"reachable(a,d)", &assertion),
            Err(SaysError::InvalidProof(PrincipalId(0)))
        );
    }

    #[test]
    fn rsa_round_trip_and_spoof_detection() {
        let (a, b) = setup(SaysLevel::Rsa);
        let assertion = a.assert(b"bestPath(a,c,[a,b,c],2)");
        assert!(assertion.proof.wire_len() >= 64);
        assert!(b.verify(b"bestPath(a,c,[a,b,c],2)", &assertion).is_ok());

        // A spoofed assertion claiming to come from b but signed by a fails.
        let spoofed = SaysAssertion {
            principal: PrincipalId(1),
            proof: assertion.proof.clone(),
        };
        assert_eq!(
            b.verify(b"bestPath(a,c,[a,b,c],2)", &spoofed),
            Err(SaysError::InvalidProof(PrincipalId(1)))
        );
    }

    #[test]
    fn level_ordering_is_enforced() {
        let (a, b) = setup(SaysLevel::Cleartext);
        let weak = a.assert(b"x");
        assert_eq!(
            b.verify_at_level(b"x", &weak, SaysLevel::Rsa),
            Err(SaysError::InsufficientLevel {
                required: SaysLevel::Rsa,
                got: SaysLevel::Cleartext
            })
        );
        // A stronger proof satisfies a weaker requirement.
        let (a_rsa, b_rsa) = setup(SaysLevel::Rsa);
        let strong = a_rsa.assert(b"x");
        assert!(b_rsa
            .verify_at_level(b"x", &strong, SaysLevel::Hmac)
            .is_ok());
    }

    #[test]
    fn frame_signatures_cover_every_tuple_at_every_level() {
        let tuples: Vec<&[u8]> = vec![b"link(a,b)", b"reachable(a,c)", b"bestPath(a,c,2)"];
        for level in SaysLevel::ALL {
            let (a, b) = setup(level);
            let assertion = a.assert_frame(&tuples);
            // One proof; its size does not scale with the tuple count.
            assert_eq!(assertion.proof.wire_len(), a.proof_overhead());
            assert!(b.verify_frame(&tuples, &assertion).is_ok());
            // A one-tuple frame signs exactly the per-tuple payload.
            let single = a.assert_frame(&tuples[..1]);
            assert!(b.verify(b"link(a,b)", &single).is_ok());
        }
    }

    #[test]
    fn tampered_frames_fail_verification() {
        let tuples: Vec<&[u8]> = vec![b"link(a,b)", b"reachable(a,c)"];
        let (a, b) = setup(SaysLevel::Rsa);
        let assertion = a.assert_frame(&tuples);
        // Altering any tuple, dropping one, or reordering breaks the proof.
        let altered: Vec<&[u8]> = vec![b"link(a,b)", b"reachable(a,d)"];
        assert!(b.verify_frame(&altered, &assertion).is_err());
        assert!(b.verify_frame(&tuples[..1], &assertion).is_err());
        let reordered: Vec<&[u8]> = vec![b"reachable(a,c)", b"link(a,b)"];
        assert!(b.verify_frame(&reordered, &assertion).is_err());
        assert_eq!(frame_payload(&tuples), b"link(a,b)reachable(a,c)".to_vec());
    }

    #[test]
    fn unknown_principal_is_rejected() {
        let (a, b) = setup(SaysLevel::Rsa);
        let mut assertion = a.assert(b"y");
        assertion.principal = PrincipalId(42);
        assert_eq!(
            b.verify(b"y", &assertion),
            Err(SaysError::UnknownPrincipal(PrincipalId(42)))
        );
    }

    #[test]
    fn proof_serialisation_roundtrip() {
        let (a, _) = setup(SaysLevel::Rsa);
        for level in SaysLevel::ALL {
            let auth = Authenticator::new(a.keyring.clone(), level);
            let proof = auth.assert(b"payload").proof;
            let bytes = proof.to_bytes();
            let (parsed, consumed) = SaysProof::from_bytes(&bytes).unwrap();
            assert_eq!(parsed, proof);
            assert_eq!(consumed, bytes.len());
        }
        assert!(SaysProof::from_bytes(&[]).is_none());
        assert!(SaysProof::from_bytes(&[9]).is_none());
        assert!(SaysProof::from_bytes(&[1, 0, 0]).is_none());
        assert!(SaysProof::from_bytes(&[2, 0, 10, 1]).is_none());
    }

    #[test]
    fn overhead_reflects_level() {
        let (a_clear, _) = setup(SaysLevel::Cleartext);
        let (a_hmac, _) = setup(SaysLevel::Hmac);
        let (a_rsa, _) = setup(SaysLevel::Rsa);
        assert_eq!(a_clear.proof_overhead(), 0);
        assert_eq!(a_hmac.proof_overhead(), TAG_LEN);
        assert_eq!(
            a_rsa.proof_overhead(),
            a_rsa.keyring.rsa_keypair().signature_len()
        );
        assert!(a_rsa.proof_overhead() > a_hmac.proof_overhead());
    }

    #[test]
    fn levels_are_ordered_weak_to_strong() {
        assert!(SaysLevel::Cleartext < SaysLevel::Hmac);
        assert!(SaysLevel::Hmac < SaysLevel::Rsa);
        assert_eq!(SaysLevel::default(), SaysLevel::Cleartext);
    }
}
