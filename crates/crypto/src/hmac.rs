//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! The paper (Section 2.2) notes that `says` may be realised with mechanisms
//! of different strength: "in a hostile world, says may require digital
//! signatures, while in a more benign world, says may simply append a
//! cleartext principal header".  HMAC occupies the middle of that spectrum in
//! this reproduction: it authenticates tuples between principals sharing a
//! pairwise secret at a fraction of the cost of RSA.

use crate::sha256::{sha256, Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

/// Length in bytes of an HMAC-SHA-256 tag.
pub const TAG_LEN: usize = DIGEST_LEN;

/// An HMAC-SHA-256 key with its padded-key block absorptions precomputed.
///
/// The first compression of both the inner (`key ⊕ ipad`) and outer
/// (`key ⊕ opad`) hashes depends only on the key, so a key that MACs many
/// messages — a session channel authenticating every frame on a link —
/// pays those two compressions once at construction instead of on every
/// tag.
#[derive(Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HmacKey(..)")
    }
}

impl HmacKey {
    /// Precomputes the padded-key state for `key` (hashed first when longer
    /// than one block, per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let hashed = sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(&hashed);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Starts one MAC computation: a hasher with the inner padded key
    /// already absorbed — stream the message into it, then [`HmacKey::finish`].
    pub fn begin(&self) -> Sha256 {
        self.inner.clone()
    }

    /// Completes a MAC started with [`HmacKey::begin`].
    pub fn finish(&self, inner: Sha256) -> Digest {
        let inner_digest = inner.finalize();
        let mut outer = self.outer.clone();
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// One-shot `HMAC-SHA256(key, message)` under this key.
    pub fn mac(&self, message: &[u8]) -> Digest {
        let mut inner = self.begin();
        inner.update(message);
        self.finish(inner)
    }

    /// Verifies a tag in constant time.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        constant_time_eq(&self.mac(message), tag)
    }
}

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    HmacKey::new(key).mac(message)
}

/// Constant-time comparison of two byte strings.
///
/// Verification of authentication tags must not leak, through timing, the
/// position of the first mismatching byte.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Verifies an HMAC tag in constant time.
pub fn hmac_verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
    let expected = hmac_sha256(key, message);
    constant_time_eq(&expected, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            to_hex(&hmac_sha256(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            to_hex(&hmac_sha256(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            to_hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            to_hex(&hmac_sha256(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_valid_and_rejects_forged() {
        let key = b"pairwise secret between a and b";
        let msg = b"reachable(a,c)";
        let tag = hmac_sha256(key, msg);
        assert!(hmac_verify(key, msg, &tag));

        let mut forged = tag;
        forged[0] ^= 1;
        assert!(!hmac_verify(key, msg, &forged));
        assert!(!hmac_verify(b"wrong key", msg, &tag));
        assert!(!hmac_verify(key, b"reachable(a,d)", &tag));
    }

    #[test]
    fn constant_time_eq_handles_length_mismatch() {
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"same", b"same"));
    }
}
