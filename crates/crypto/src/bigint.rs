//! Arbitrary-precision unsigned integer arithmetic.
//!
//! The paper's prototype relies on OpenSSL for RSA; this reproduction has no
//! such dependency, so the multi-precision arithmetic underlying RSA key
//! generation, signing and verification is implemented here from scratch.
//!
//! The representation is a little-endian vector of 64-bit limbs with no
//! trailing zero limbs (the canonical form of zero is the empty vector).
//! Hot-path modular exponentiation goes through [`MontgomeryCtx`], which
//! implements CIOS Montgomery multiplication; the schoolbook routines here are
//! used for key generation and one-off conversions.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 64-bit limbs; no trailing zeros (empty == 0).
    limbs: Vec<u64>,
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single 64-bit word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a 128-bit word.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        if hi == 0 {
            Self::from_u64(lo)
        } else {
            BigUint {
                limbs: vec![lo, hi],
            }
        }
    }

    /// Builds a value from raw little-endian limbs, normalising trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Returns the little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Parses a big-endian byte string (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// Serialises to a minimal big-endian byte string (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zero bytes.
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first_nonzero);
        out
    }

    /// Serialises to a fixed-width big-endian byte string, left-padded with
    /// zeros.  Panics if the value does not fit.
    pub fn to_bytes_be_padded(&self, width: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= width,
            "value needs {} bytes but field is {} bytes",
            raw.len(),
            width
        );
        let mut out = vec![0u8; width - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.trim();
        let padded;
        let s = if s.len() % 2 == 1 {
            padded = format!("0{s}");
            &padded
        } else {
            s
        };
        let chars: Vec<char> = s.chars().collect();
        for pair in chars.chunks(2) {
            let hi = pair[0].to_digit(16)?;
            let lo = pair[1].to_digit(16)?;
            bytes.push((hi * 16 + lo) as u8);
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Renders as lowercase hexadecimal with no leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True if the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        let off = i % 64;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Returns the low 64 bits of the value.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Addition.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in longer.iter().enumerate() {
            let b = shorter.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Adds a small word.
    pub fn add_u64(&self, v: u64) -> BigUint {
        self.add(&BigUint::from_u64(v))
    }

    /// Subtraction; returns `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Subtraction; panics on underflow.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry as u128;
                out[i + j] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry as u128;
                out[k] = cur as u64;
                carry = (cur >> 64) as u64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiplication by a small word.
    pub fn mul_u64(&self, v: u64) -> BigUint {
        self.mul(&BigUint::from_u64(v))
    }

    /// Left shift by `bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Right shift by `bits`.
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            let src = &self.limbs[limb_shift..];
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = if i + 1 < src.len() {
                    src[i + 1] << (64 - bit_shift)
                } else {
                    0
                };
                out.push(lo | hi);
            }
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder via binary long division.
    ///
    /// This is O(bits × limbs); it is only used in cold paths (key generation,
    /// Montgomery-context setup), never per-tuple.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        // Knuth Algorithm D (TAOCP vol. 2, 4.3.1) over 64-bit limbs:
        // normalise so the divisor's top limb has its high bit set, then
        // estimate each quotient limb from the top two dividend limbs and
        // correct it at most twice.  Linear passes per quotient limb, versus
        // the one-bit-per-iteration schoolbook loop this replaces.
        let shift = divisor.limbs.last().expect("multi-limb").leading_zeros() as usize;
        let v = divisor.shl_bits(shift);
        let u = self.shl_bits(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let vn = &v.limbs;
        let mut un = u.limbs.clone();
        un.push(0);
        let mut quotient = vec![0u64; m + 1];
        let base = 1u128 << 64;
        for j in (0..=m).rev() {
            // Estimate from the top two dividend limbs over the top divisor
            // limb; thanks to normalisation the estimate is at most 2 high.
            let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
            let den = vn[n - 1] as u128;
            let mut qhat = num / den;
            let mut rhat = num % den;
            while qhat >= base
                || qhat * (vn[n - 2] as u128) > ((rhat << 64) | un[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += den;
                if rhat >= base {
                    break;
                }
            }
            // Multiply-and-subtract qhat * v from the dividend window.
            let mut carry = 0u128;
            let mut borrow = 0i128;
            for i in 0..n {
                let p = qhat * (vn[i] as u128) + carry;
                carry = p >> 64;
                let d = (un[j + i] as i128) - ((p as u64) as i128) + borrow;
                un[j + i] = d as u64;
                borrow = d >> 64; // arithmetic: 0 or -1
            }
            let d = (un[j + n] as i128) - (carry as i128) + borrow;
            un[j + n] = d as u64;
            if d < 0 {
                // The estimate was one too high after all: add back.
                qhat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = (un[j + i] as u128) + (vn[i] as u128) + c;
                    un[j + i] = s as u64;
                    c = s >> 64;
                }
                un[j + n] = (un[j + n] as u128 + c) as u64;
            }
            quotient[j] = qhat as u64;
        }
        un.truncate(n);
        let rem = BigUint::from_limbs(un).shr_bits(shift);
        (BigUint::from_limbs(quotient), rem)
    }

    /// Quotient and remainder by a single 64-bit word.
    pub fn div_rem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "BigUint division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Remainder modulo a 64-bit word.
    pub fn mod_u64(&self, modulus: u64) -> u64 {
        self.div_rem_u64(modulus).1
    }

    /// `self mod modulus` via long division.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// Modular exponentiation.  Uses Montgomery multiplication when the
    /// modulus is odd (the RSA case) and falls back to multiply-and-reduce
    /// otherwise.
    pub fn mod_pow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(
            !modulus.is_zero(),
            "modular exponentiation with zero modulus"
        );
        if modulus.is_one() {
            return BigUint::zero();
        }
        if let Some(ctx) = MontgomeryCtx::new(modulus) {
            return ctx.mod_pow(self, exponent);
        }
        // Generic square-and-multiply with explicit reduction.
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        let bits = exponent.bit_len();
        for i in 0..bits {
            if exponent.bit(i) {
                result = result.mul(&base).rem(modulus);
            }
            if i + 1 < bits {
                base = base.mul(&base).rem(modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr_bits(1);
            b = b.shr_bits(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr_bits(1);
        }
        loop {
            while b.is_even() {
                b = b.shr_bits(1);
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl_bits(shift)
    }

    /// Modular multiplicative inverse: returns `x` with `self * x ≡ 1 (mod
    /// modulus)`, or `None` when `gcd(self, modulus) != 1`.
    pub fn mod_inverse(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid with signed coefficients represented as
        // (magnitude, is_negative).
        let mut old_r = modulus.clone();
        let mut r = self.rem(modulus);
        if r.is_zero() {
            return None;
        }
        let mut old_t = (BigUint::zero(), false);
        let mut t = (BigUint::one(), false);

        fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
            // a - b
            match (a.1, b.1) {
                (false, false) => {
                    if a.0 >= b.0 {
                        (a.0.sub(&b.0), false)
                    } else {
                        (b.0.sub(&a.0), true)
                    }
                }
                (true, true) => {
                    if b.0 >= a.0 {
                        (b.0.sub(&a.0), false)
                    } else {
                        (a.0.sub(&b.0), true)
                    }
                }
                (false, true) => (a.0.add(&b.0), false),
                (true, false) => (a.0.add(&b.0), !a.0.add(&b.0).is_zero()),
            }
        }

        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let qt = (q.mul(&t.0), t.1);
            let new_t = signed_sub(&old_t, &qt);
            old_t = std::mem::replace(&mut t, new_t);
        }
        if !old_r.is_one() {
            return None;
        }
        // Normalise old_t into [0, modulus).
        let (mag, neg) = old_t;
        let reduced = mag.rem(modulus);
        if neg && !reduced.is_zero() {
            Some(modulus.sub(&reduced))
        } else {
            Some(reduced)
        }
    }

    /// Generates a uniformly random value with exactly `bits` bits (top bit
    /// set) using the supplied random byte source.
    pub fn random_with_bits<R: rand::RngCore>(bits: usize, rng: &mut R) -> BigUint {
        assert!(bits > 0);
        let nbytes = bits.div_ceil(8);
        let mut bytes = vec![0u8; nbytes];
        rng.fill_bytes(&mut bytes);
        // Clear excess high bits, then force the top bit.
        let excess = nbytes * 8 - bits;
        bytes[0] &= 0xffu8 >> excess;
        bytes[0] |= 1u8 << (7 - excess);
        BigUint::from_bytes_be(&bytes)
    }

    /// Generates a uniformly random value below `bound` (which must be > 0).
    pub fn random_below<R: rand::RngCore>(bound: &BigUint, rng: &mut R) -> BigUint {
        assert!(!bound.is_zero());
        let bits = bound.bit_len();
        loop {
            let nbytes = bits.div_ceil(8);
            let mut bytes = vec![0u8; nbytes];
            rng.fill_bytes(&mut bytes);
            let excess = nbytes * 8 - bits;
            bytes[0] &= 0xffu8 >> excess;
            let candidate = BigUint::from_bytes_be(&bytes);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

/// Precomputed state for Montgomery modular multiplication with an odd
/// modulus (the RSA hot path).
#[derive(Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little endian, length `k`.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0inv: u64,
    /// `R^2 mod n` where `R = 2^(64k)`, used to convert into Montgomery form.
    r2: Vec<u64>,
    /// `R mod n` — the Montgomery residue of 1, the neutral accumulator of
    /// every exponentiation.
    one_mont: Vec<u64>,
    k: usize,
    modulus: BigUint,
}

impl fmt::Debug for MontgomeryCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MontgomeryCtx")
            .field("modulus_bits", &self.modulus.bit_len())
            .finish()
    }
}

impl MontgomeryCtx {
    /// Builds a context for an odd, non-zero modulus; returns `None`
    /// otherwise.
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_zero() || modulus.is_even() || modulus.is_one() {
            return None;
        }
        let n = modulus.limbs.clone();
        let k = n.len();
        // Inverse of n[0] modulo 2^64 by Newton iteration, then negate.
        let mut inv = 1u64;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();
        // R^2 mod n, computed once with the slow division.
        let r2_big = BigUint::one().shl_bits(128 * k).rem(modulus);
        let mut r2 = r2_big.limbs.clone();
        r2.resize(k, 0);
        let one_mont_big = BigUint::one().shl_bits(64 * k).rem(modulus);
        let mut one_mont = one_mont_big.limbs.clone();
        one_mont.resize(k, 0);
        Some(MontgomeryCtx {
            n,
            n0inv,
            r2,
            one_mont,
            k,
            modulus: modulus.clone(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod n` where
    /// inputs and output are length-`k` limb vectors (values < n).
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut t = vec![0u64; self.k + 2];
        let mut out = vec![0u64; self.k];
        self.mont_mul_into(a, b, &mut t, &mut out);
        out
    }

    /// [`MontgomeryCtx::mont_mul`] into caller-owned buffers — the
    /// allocation-free core the exponentiation loops run on (`t` is `k + 2`
    /// limbs of scratch, `out` is the `k`-limb result and must not alias
    /// the inputs).  The RSA hot sizes (4-limb CRT halves, 8-limb full
    /// width) dispatch to a fully unrolled stack-array kernel.
    fn mont_mul_into(&self, a: &[u64], b: &[u64], t: &mut [u64], out: &mut [u64]) {
        match self.k {
            4 => return self.mont_mul_fixed::<4>(a, b, out),
            8 => return self.mont_mul_fixed::<8>(a, b, out),
            _ => {}
        }
        let k = self.k;
        t.fill(0);
        for &bi in b.iter().take(k) {
            // Multiply-accumulate: t += a * bi
            let mut carry = 0u64;
            for j in 0..k {
                let sum = t[j] as u128 + (a[j] as u128) * (bi as u128) + carry as u128;
                t[j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[k] as u128 + carry as u128;
            t[k] = sum as u64;
            t[k + 1] = (sum >> 64) as u64;

            // Reduction: add m * n and divide by 2^64.
            let m = t[0].wrapping_mul(self.n0inv);
            let sum = t[0] as u128 + (m as u128) * (self.n[0] as u128);
            let mut carry = (sum >> 64) as u64;
            for j in 1..k {
                let sum = t[j] as u128 + (m as u128) * (self.n[j] as u128) + carry as u128;
                t[j - 1] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t[k] as u128 + carry as u128;
            t[k - 1] = sum as u64;
            let carry = (sum >> 64) as u64;
            t[k] = t[k + 1].wrapping_add(carry);
            t[k + 1] = 0;
        }
        // Final subtraction, branchless: the result is in [0, 2n), so
        // subtract n unconditionally and keep whichever value is correct
        // via a mask.  Control flow stays operand-independent — nothing
        // for the branch predictor to mispredict on fresh operands, and
        // no operand-dependent timing.
        let overflow = t[k] != 0;
        let mut borrow = 0u64;
        for j in 0..k {
            let (d1, b1) = t[j].overflowing_sub(self.n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[j] = d2;
            borrow = (b1 as u64) | (b2 as u64);
        }
        // Keep the subtracted value when t >= n: the accumulator overflowed
        // past k limbs, or the subtraction needed no borrow.
        let keep_sub = ((overflow as u64) | (1 - borrow)).wrapping_neg();
        for j in 0..k {
            out[j] = (out[j] & keep_sub) | (t[j] & !keep_sub);
        }
    }

    /// CIOS with the limb count fixed at compile time: the accumulator
    /// lives in a stack array (the two overflow limbs in scalars), every
    /// inner loop fully unrolls, and all bounds checks vanish — worth ~2×
    /// on the 4- and 8-limb operands RSA signing actually uses.
    fn mont_mul_fixed<const K: usize>(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let n: &[u64; K] = self.n[..K].try_into().expect("modulus limb count");
        let a: &[u64; K] = a[..K].try_into().expect("operand limb count");
        let mut t = [0u64; K];
        let mut t_hi = 0u64; // t[K]
        for &bi in &b[..K] {
            // Multiply-accumulate: t += a * bi
            let mut carry = 0u64;
            for j in 0..K {
                let sum = t[j] as u128 + (a[j] as u128) * (bi as u128) + carry as u128;
                t[j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t_hi as u128 + carry as u128;
            t_hi = sum as u64;
            let t_hi2 = (sum >> 64) as u64; // t[K + 1], only ever 0 or 1

            // Reduction: add m * n and divide by 2^64.
            let m = t[0].wrapping_mul(self.n0inv);
            let sum = t[0] as u128 + (m as u128) * (n[0] as u128);
            let mut carry = (sum >> 64) as u64;
            for j in 1..K {
                let sum = t[j] as u128 + (m as u128) * (n[j] as u128) + carry as u128;
                t[j - 1] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            let sum = t_hi as u128 + carry as u128;
            t[K - 1] = sum as u64;
            t_hi = t_hi2.wrapping_add((sum >> 64) as u64);
        }
        // Final subtraction, branchless (see `mont_mul_into`): subtract n
        // unconditionally and mask-select, keeping control flow
        // operand-independent through the exponentiation's hottest path.
        let mut sub = [0u64; K];
        let mut borrow = 0u64;
        for j in 0..K {
            let (d1, b1) = t[j].overflowing_sub(n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            sub[j] = d2;
            borrow = (b1 as u64) | (b2 as u64);
        }
        let keep_sub = (((t_hi != 0) as u64) | (1 - borrow)).wrapping_neg();
        for j in 0..K {
            out[j] = (sub[j] & keep_sub) | (t[j] & !keep_sub);
        }
    }

    /// Montgomery squaring `a * a * R^{-1} mod n`.  Squaring needs only
    /// half the off-diagonal partial products of a general multiply, so the
    /// fixed RSA limb counts get a dedicated product-scanning kernel; other
    /// sizes fall back to [`MontgomeryCtx::mont_mul_into`].  Squares are
    /// the bulk of an exponentiation (one per exponent bit, versus one
    /// multiply per window digit), so this is where the savings compound.
    fn mont_sqr_into(&self, a: &[u64], t: &mut [u64], out: &mut [u64]) {
        match self.k {
            4 => self.mont_sqr_fixed::<4>(a, out),
            8 => self.mont_sqr_fixed::<8>(a, out),
            _ => self.mont_mul_into(a, a, t, out),
        }
    }

    /// Separated-operand-scanning square + Montgomery reduction with the
    /// limb count fixed at compile time (`K <= 8`): the full `2K`-limb
    /// square is built from the strict upper triangle (doubled, diagonal
    /// added), then reduced one limb at a time.  (K² - K) / 2 fewer word
    /// multiplies than the CIOS multiply kernel.
    fn mont_sqr_fixed<const K: usize>(&self, a: &[u64], out: &mut [u64]) {
        debug_assert!(K <= 8, "square buffer holds 2K + 1 <= 17 limbs");
        let n: &[u64; K] = self.n[..K].try_into().expect("modulus limb count");
        let a: &[u64; K] = a[..K].try_into().expect("operand limb count");
        // p holds the 2K-limb square; limb 2K is the reduction's carry slot.
        let mut p = [0u64; 17];
        // Strict upper triangle: each a[i]·a[j] (j > i) is needed twice.
        for i in 0..K {
            let mut carry = 0u64;
            for j in (i + 1)..K {
                let sum = p[i + j] as u128 + (a[i] as u128) * (a[j] as u128) + carry as u128;
                p[i + j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            p[i + K] = carry;
        }
        // Double it (2·Σ_{i<j} fits 2K limbs because it is at most a²) ...
        let mut top = 0u64;
        for limb in p.iter_mut().take(2 * K) {
            let hi = *limb >> 63;
            *limb = (*limb << 1) | top;
            top = hi;
        }
        debug_assert_eq!(top, 0);
        // ... and add the diagonal squares a[i]².
        let mut carry = 0u64;
        for i in 0..K {
            let sq = (a[i] as u128) * (a[i] as u128);
            let s0 = p[2 * i] as u128 + (sq as u64 as u128) + carry as u128;
            p[2 * i] = s0 as u64;
            let s1 = p[2 * i + 1] as u128 + (sq >> 64) + (s0 >> 64);
            p[2 * i + 1] = s1 as u64;
            carry = (s1 >> 64) as u64;
        }
        debug_assert_eq!(carry, 0);
        // Montgomery-reduce the 2K-limb product one limb at a time; the
        // ripple past position i + K is rare and mathematically confined to
        // the carry slot.
        for i in 0..K {
            let m = p[i].wrapping_mul(self.n0inv);
            let mut carry = 0u64;
            for j in 0..K {
                let sum = p[i + j] as u128 + (m as u128) * (n[j] as u128) + carry as u128;
                p[i + j] = sum as u64;
                carry = (sum >> 64) as u64;
            }
            // Fixed-trip carry propagation into the high limbs: the trip
            // count depends only on i, never on the data, so the loop
            // neither mispredicts nor leaks.
            for limb in p[i + K..=2 * K].iter_mut() {
                let (v, o) = limb.overflowing_add(carry);
                *limb = v;
                carry = o as u64;
            }
            debug_assert_eq!(carry, 0);
        }
        // Final subtraction, branchless (see `mont_mul_into`).
        let mut sub = [0u64; K];
        let mut borrow = 0u64;
        for j in 0..K {
            let (d1, b1) = p[K + j].overflowing_sub(n[j]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            sub[j] = d2;
            borrow = (b1 as u64) | (b2 as u64);
        }
        let keep_sub = (((p[2 * K] != 0) as u64) | (1 - borrow)).wrapping_neg();
        for j in 0..K {
            out[j] = (sub[j] & keep_sub) | (p[K + j] & !keep_sub);
        }
    }

    fn to_mont(&self, v: &BigUint) -> Vec<u64> {
        let reduced = v.rem(&self.modulus);
        let mut limbs = reduced.limbs.clone();
        limbs.resize(self.k, 0);
        self.mont_mul(&limbs, &self.r2)
    }

    fn mont_to_uint(&self, v: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(v, &one))
    }

    /// Modular multiplication `a * b mod n`.
    pub fn mod_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.mont_to_uint(&self.mont_mul(&am, &bm))
    }

    /// Window width for fixed-window exponentiation: wide enough that the
    /// 2^(w-1)-entry odd-power table amortises over the exponent, narrow
    /// enough that building it never costs more than it saves.
    fn window_width(bits: usize) -> usize {
        match bits {
            0..=24 => 1,
            25..=160 => 3,
            161..=672 => 4,
            _ => 5,
        }
    }

    /// Modular exponentiation `base^exponent mod n` by 2^w fixed-window
    /// evaluation over Montgomery residues.
    ///
    /// The exponent is consumed left to right in `w`-bit digits; a
    /// precomputed table of the odd powers `base^1, base^3, ...,
    /// base^(2^w - 1)` serves every non-zero digit (an even digit
    /// `odd << t` multiplies by the odd entry and defers `t` of its
    /// squarings), cutting the multiplication count of plain binary
    /// square-and-multiply from one per set bit to at most one per digit.
    pub fn mod_pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let bits = exponent.bit_len();
        let w = Self::window_width(bits);
        if w == 1 {
            return self.mod_pow_binary(base, exponent);
        }
        let base_m = self.to_mont(base);
        let acc = match self.k {
            // The RSA hot sizes run the whole window evaluation
            // monomorphized: operands live in stack arrays and every
            // kernel call is statically dispatched, so nothing is
            // re-checked or re-branched per Montgomery operation.
            4 => self.mod_pow_windowed_fixed::<4>(&base_m, exponent, w),
            8 => self.mod_pow_windowed_fixed::<8>(&base_m, exponent, w),
            _ => self.mod_pow_windowed_generic(&base_m, exponent, w),
        };
        self.mont_to_uint(&acc)
    }

    /// The fixed-window evaluation loop over a Montgomery-form base, for
    /// the compile-time limb counts RSA actually uses.  `w >= 2` (the
    /// caller routes `w == 1` to the binary ladder) and `w <= 5`, so the
    /// odd-power table never exceeds 16 entries.
    fn mod_pow_windowed_fixed<const K: usize>(
        &self,
        base_m: &[u64],
        exponent: &BigUint,
        w: usize,
    ) -> Vec<u64> {
        debug_assert!((2..=5).contains(&w));
        let bits = exponent.bit_len();
        let base: [u64; K] = base_m[..K].try_into().expect("operand limb count");
        let mut base_sq = [0u64; K];
        self.mont_sqr_fixed::<K>(&base, &mut base_sq);
        // odd[i] = base^(2i+1) in Montgomery form.
        let mut odd = [[0u64; K]; 16];
        odd[0] = base;
        for i in 1..(1usize << (w - 1)) {
            let (prev, rest) = odd.split_at_mut(i);
            self.mont_mul_fixed::<K>(&prev[i - 1], &base_sq, &mut rest[0]);
        }
        let mut acc = [0u64; K];
        let mut tmp = [0u64; K];
        let mut started = false;
        for d in (0..bits.div_ceil(w)).rev() {
            let mut digit = 0usize;
            for j in (0..w).rev() {
                let bit_idx = d * w + j;
                digit <<= 1;
                if bit_idx < bits && exponent.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit == 0 {
                if started {
                    for _ in 0..w {
                        self.mont_sqr_fixed::<K>(&acc, &mut tmp);
                        acc = tmp;
                    }
                }
                continue;
            }
            let tz = digit.trailing_zeros() as usize;
            let odd_idx = (digit >> tz) >> 1;
            if started {
                for _ in 0..(w - tz) {
                    self.mont_sqr_fixed::<K>(&acc, &mut tmp);
                    acc = tmp;
                }
                self.mont_mul_fixed::<K>(&acc, &odd[odd_idx], &mut tmp);
                acc = tmp;
            } else {
                acc = odd[odd_idx];
                started = true;
            }
            for _ in 0..tz {
                self.mont_sqr_fixed::<K>(&acc, &mut tmp);
                acc = tmp;
            }
        }
        acc.to_vec()
    }

    /// The fixed-window evaluation loop for arbitrary limb counts —
    /// identical schedule to the monomorphized path, on heap buffers.
    fn mod_pow_windowed_generic(&self, base_m: &[u64], exponent: &BigUint, w: usize) -> Vec<u64> {
        let bits = exponent.bit_len();
        // odd[i] = base^(2i+1) in Montgomery form.
        let base_sq = {
            let mut t = vec![0u64; self.k + 2];
            let mut out = vec![0u64; self.k];
            self.mont_sqr_into(base_m, &mut t, &mut out);
            out
        };
        let mut odd = Vec::with_capacity(1 << (w - 1));
        odd.push(base_m.to_vec());
        for i in 1..(1usize << (w - 1)) {
            odd.push(self.mont_mul(&odd[i - 1], &base_sq));
        }
        let mut acc = self.one_mont.clone();
        let mut tmp = vec![0u64; self.k];
        let mut scratch = vec![0u64; self.k + 2];
        let mut started = false;
        for d in (0..bits.div_ceil(w)).rev() {
            let mut digit = 0usize;
            for j in (0..w).rev() {
                let bit_idx = d * w + j;
                digit <<= 1;
                if bit_idx < bits && exponent.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit == 0 {
                if started {
                    for _ in 0..w {
                        self.mont_sqr_into(&acc, &mut scratch, &mut tmp);
                        std::mem::swap(&mut acc, &mut tmp);
                    }
                }
                continue;
            }
            let tz = digit.trailing_zeros() as usize;
            let odd_idx = (digit >> tz) >> 1;
            if started {
                for _ in 0..(w - tz) {
                    self.mont_sqr_into(&acc, &mut scratch, &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                self.mont_mul_into(&acc, &odd[odd_idx], &mut scratch, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            } else {
                acc.clone_from(&odd[odd_idx]);
                started = true;
            }
            for _ in 0..tz {
                self.mont_sqr_into(&acc, &mut scratch, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        acc
    }

    /// Modular exponentiation by plain left-to-right binary
    /// square-and-multiply over Montgomery residues.
    ///
    /// Kept public as the reference implementation: the equivalence
    /// proptests pit [`MontgomeryCtx::mod_pow`]'s windowed evaluation
    /// against this path, and the `crypto_primitives` bench reports both so
    /// the window's speedup stays visible.
    pub fn mod_pow_binary(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        if exponent.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        let mut acc = self.one_mont.clone();
        let mut tmp = vec![0u64; self.k];
        let mut scratch = vec![0u64; self.k + 2];
        let bits = exponent.bit_len();
        for i in (0..bits).rev() {
            self.mont_sqr_into(&acc, &mut scratch, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
            if exponent.bit(i) {
                self.mont_mul_into(&acc, &base_m, &mut scratch, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
        }
        self.mont_to_uint(&acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn big(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
    }

    #[test]
    fn byte_roundtrip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![1],
            vec![0xff; 9],
            vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11],
        ];
        for bytes in cases {
            let v = BigUint::from_bytes_be(&bytes);
            let back = v.to_bytes_be();
            // Round trip strips leading zeros; compare numerically instead.
            assert_eq!(BigUint::from_bytes_be(&back), v);
        }
        // Leading zeros are ignored on parse.
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 2]),
            BigUint::from_bytes_be(&[1, 2])
        );
    }

    #[test]
    fn padded_serialisation() {
        let v = BigUint::from_u64(0x0102);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 1, 2]);
        assert_eq!(BigUint::zero().to_bytes_be_padded(3), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "field is")]
    fn padded_serialisation_panics_when_too_small() {
        BigUint::from_u128(u128::MAX).to_bytes_be_padded(8);
    }

    #[test]
    fn hex_roundtrip() {
        for s in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ] {
            let v = BigUint::from_hex(s).unwrap();
            assert_eq!(v.to_hex(), s, "hex {s}");
        }
        assert_eq!(BigUint::from_hex("00ff").unwrap(), BigUint::from_u64(255));
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn add_sub_small() {
        let a = big(u64::MAX as u128);
        let b = big(1);
        let sum = a.add(&b);
        assert_eq!(sum, big(u64::MAX as u128 + 1));
        assert_eq!(sum.sub(&b), a);
        assert_eq!(a.checked_sub(&sum), None);
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = big(u64::MAX as u128);
        let b = big(u64::MAX as u128);
        assert_eq!(
            a.mul(&b),
            BigUint::from_u128((u64::MAX as u128) * (u64::MAX as u128))
        );
        assert_eq!(a.mul(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn shifts() {
        let v = big(0b1011);
        assert_eq!(v.shl_bits(0), v);
        assert_eq!(v.shl_bits(1), big(0b10110));
        assert_eq!(v.shl_bits(64).shr_bits(64), v);
        assert_eq!(v.shl_bits(130).shr_bits(130), v);
        assert_eq!(v.shr_bits(4), BigUint::zero());
        assert_eq!(big(0b1100).shr_bits(2), big(0b11));
    }

    #[test]
    fn div_rem_small_and_multi_limb() {
        let a = big(1_000_000_007u128 * 97 + 13);
        let (q, r) = a.div_rem(&big(1_000_000_007));
        assert_eq!(q, big(97));
        assert_eq!(r, big(13));

        let big_a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let big_b = BigUint::from_hex("fedcba9876543210").unwrap();
        let (q, r) = big_a.div_rem(&big_b);
        assert_eq!(q.mul(&big_b).add(&r), big_a);
        assert!(r < big_b);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(5).div_rem(&BigUint::zero());
    }

    #[test]
    fn mod_u64_matches_div_rem() {
        let a = BigUint::from_hex("123456789abcdef0fedcba9876543210").unwrap();
        assert_eq!(a.mod_u64(97), a.div_rem(&big(97)).1.low_u64());
        assert_eq!(a.mod_u64(2), 0);
    }

    #[test]
    fn mod_pow_small_cases() {
        // 4^13 mod 497 = 445
        assert_eq!(big(4).mod_pow(&big(13), &big(497)), big(445));
        // base^0 = 1
        assert_eq!(big(12345).mod_pow(&BigUint::zero(), &big(1000)), big(1));
        // mod 1 = 0
        assert_eq!(big(7).mod_pow(&big(3), &BigUint::one()), BigUint::zero());
        // Fermat: 2^(p-1) mod p = 1 for prime p
        let p = big(1_000_000_007);
        assert_eq!(big(2).mod_pow(&p.sub(&BigUint::one()), &p), BigUint::one());
    }

    #[test]
    fn mod_pow_even_modulus_falls_back() {
        // 3^5 mod 16 = 243 mod 16 = 3
        assert_eq!(big(3).mod_pow(&big(5), &big(16)), big(3));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(12).gcd(&big(18)), big(6));
        assert_eq!(big(17).gcd(&big(31)), big(1));
        assert_eq!(BigUint::zero().gcd(&big(5)), big(5));
        assert_eq!(big(5).gcd(&BigUint::zero()), big(5));
        assert_eq!(big(48).gcd(&big(36)), big(12));
    }

    #[test]
    fn mod_inverse_small() {
        // 3 * 7 = 21 ≡ 1 mod 10
        assert_eq!(big(3).mod_inverse(&big(10)), Some(big(7)));
        // gcd(4, 10) = 2, no inverse
        assert_eq!(big(4).mod_inverse(&big(10)), None);
        // 65537 inverse mod a prime-ish value
        let m = big(1_000_000_007);
        let inv = big(65537).mod_inverse(&m).unwrap();
        assert_eq!(big(65537).mul(&inv).rem(&m), BigUint::one());
    }

    #[test]
    fn montgomery_matches_naive() {
        let modulus = BigUint::from_hex("f123456789abcdef0123456789abcdefb").unwrap();
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let a = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        let b = BigUint::from_hex("aabbccddeeff00112233445566").unwrap();
        assert_eq!(ctx.mod_mul(&a, &b), a.mul(&b).rem(&modulus));

        let e = big(4097);
        let naive = {
            let mut acc = BigUint::one();
            for _ in 0..4097u32 {
                acc = acc.mul(&a).rem(&modulus);
            }
            acc
        };
        assert_eq!(ctx.mod_pow(&a, &e), naive);
    }

    #[test]
    fn montgomery_rejects_even_modulus() {
        assert!(MontgomeryCtx::new(&big(100)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
    }

    #[test]
    fn random_with_bits_has_exact_bit_length() {
        let mut rng = StdRng::seed_from_u64(42);
        for bits in [1usize, 7, 8, 63, 64, 65, 257] {
            let v = BigUint::random_with_bits(bits, &mut rng);
            assert_eq!(v.bit_len(), bits, "bits {bits}");
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = BigUint::from_hex("10000000000000001").unwrap();
        for _ in 0..50 {
            assert!(BigUint::random_below(&bound, &mut rng) < bound);
        }
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big(5) < big(6));
        assert!(BigUint::from_u128(u128::MAX) > big(1));
        assert_eq!(big(42).cmp(&big(42)), Ordering::Equal);
    }

    #[test]
    fn windowed_mod_pow_edge_exponents() {
        // A 512-bit odd modulus, the RSA shape the window is tuned for.
        let mut rng = StdRng::seed_from_u64(7);
        let modulus = {
            let m = BigUint::random_with_bits(512, &mut rng);
            if m.is_even() {
                m.add_u64(1)
            } else {
                m
            }
        };
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        let base = BigUint::random_with_bits(500, &mut rng);
        // Exponent edge shapes: empty, one, a power of two (single odd
        // digit, maximal deferred squarings), all-ones (every digit full),
        // and one spanning a digit boundary.
        let all_ones = BigUint::one().shl_bits(511).sub(&BigUint::one());
        for e in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::one().shl_bits(257),
            all_ones,
            BigUint::from_u64(65537),
        ] {
            assert_eq!(ctx.mod_pow(&base, &e), ctx.mod_pow_binary(&base, &e));
        }
    }

    proptest! {
        #[test]
        fn prop_add_sub_roundtrip(a in any::<u128>(), b in any::<u128>()) {
            let x = BigUint::from_u128(a);
            let y = BigUint::from_u128(b);
            prop_assert_eq!(x.add(&y).sub(&y), x);
        }

        #[test]
        fn prop_add_commutative(a in any::<u128>(), b in any::<u128>()) {
            let x = BigUint::from_u128(a);
            let y = BigUint::from_u128(b);
            prop_assert_eq!(x.add(&y), y.add(&x));
        }

        #[test]
        fn prop_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
            let x = BigUint::from_u64(a);
            let y = BigUint::from_u64(b);
            prop_assert_eq!(x.mul(&y), BigUint::from_u128(a as u128 * b as u128));
        }

        #[test]
        fn prop_div_rem_invariant(a in any::<u128>(), b in 1u128..) {
            let x = BigUint::from_u128(a);
            let y = BigUint::from_u128(b);
            let (q, r) = x.div_rem(&y);
            prop_assert!(r < y);
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }

        #[test]
        fn prop_div_rem_invariant_wide(
            a in proptest::collection::vec(any::<u8>(), 0..96),
            b in proptest::collection::vec(any::<u8>(), 1..48),
        ) {
            // Exercises every Algorithm D shape: multi-limb divisors, long
            // quotients, normalisation shifts and the rare add-back step.
            let x = BigUint::from_bytes_be(&a);
            let y = BigUint::from_bytes_be(&b).add_u64(1);
            let (q, r) = x.div_rem(&y);
            prop_assert!(r < y);
            prop_assert_eq!(q.mul(&y).add(&r), x);
        }

        #[test]
        fn prop_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..40)) {
            let v = BigUint::from_bytes_be(&bytes);
            prop_assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        }

        #[test]
        fn prop_shift_roundtrip(a in any::<u128>(), s in 0usize..200) {
            let x = BigUint::from_u128(a);
            prop_assert_eq!(x.shl_bits(s).shr_bits(s), x);
        }

        #[test]
        fn prop_mod_pow_matches_u128(base in 0u64..10_000, exp in 0u64..64, m in 3u64..100_000) {
            // Only odd moduli exercise the Montgomery path; both are covered here.
            let expected = {
                let mut acc: u128 = 1;
                for _ in 0..exp {
                    acc = acc * base as u128 % m as u128;
                }
                acc
            };
            let got = BigUint::from_u64(base).mod_pow(&BigUint::from_u64(exp), &BigUint::from_u64(m));
            prop_assert_eq!(got, BigUint::from_u128(expected));
        }

        #[test]
        fn prop_montgomery_mul_matches_naive(a in any::<u128>(), b in any::<u128>(), m in (3u128..).prop_map(|v| v | 1)) {
            let modulus = BigUint::from_u128(m);
            if let Some(ctx) = MontgomeryCtx::new(&modulus) {
                let x = BigUint::from_u128(a);
                let y = BigUint::from_u128(b);
                prop_assert_eq!(ctx.mod_mul(&x, &y), x.mul(&y).rem(&modulus));
            }
        }

        #[test]
        fn prop_windowed_mod_pow_matches_binary(
            base in proptest::collection::vec(any::<u8>(), 1..40),
            // Exponents up to 720 bits exercise every window-width arm
            // (w = 1, 3, 4 and 5) against the binary reference.
            exp in proptest::collection::vec(any::<u8>(), 1..90),
            modulus in proptest::collection::vec(any::<u8>(), 1..40),
        ) {
            let m = BigUint::from_bytes_be(&modulus);
            let m = if m.is_even() { m.add_u64(1) } else { m };
            if let Some(ctx) = MontgomeryCtx::new(&m) {
                let b = BigUint::from_bytes_be(&base);
                let e = BigUint::from_bytes_be(&exp);
                prop_assert_eq!(ctx.mod_pow(&b, &e), ctx.mod_pow_binary(&b, &e));
            }
        }

        #[test]
        fn prop_mod_inverse_is_inverse(a in 1u64.., m in 2u64..) {
            let x = BigUint::from_u64(a);
            let modulus = BigUint::from_u64(m);
            if let Some(inv) = x.mod_inverse(&modulus) {
                prop_assert_eq!(x.mul(&inv).rem(&modulus), BigUint::one());
                prop_assert!(inv < modulus);
            } else {
                prop_assert!(x.gcd(&modulus) != BigUint::one() || modulus.is_one());
            }
        }
    }
}
