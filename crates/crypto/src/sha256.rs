//! A from-scratch implementation of the SHA-256 cryptographic hash function
//! (FIPS 180-4).
//!
//! The paper's prototype signs every exported tuple with RSA over a message
//! digest; this module provides that digest.  The implementation favours
//! clarity over raw throughput but is still fast enough to hash the full
//! tuple traffic of the largest evaluation topologies in well under a second.

/// Size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// Size of a SHA-256 input block in bytes.
pub const BLOCK_LEN: usize = 64;

/// A SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use pasn_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), pasn_crypto::sha256::sha256(b"hello world"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes absorbed so far.
    len: u64,
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&input[..BLOCK_LEN]);
            self.compress(&block);
            input = &input[BLOCK_LEN..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual absorb of the length so `self.len` bookkeeping does not matter any more.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        compress_block(&mut self.state, block);
    }
}

/// Compresses one 64-byte block into `state`, dispatching to the hardware
/// kernel when the CPU has the SHA extensions and to the scalar reference
/// rounds otherwise.
#[allow(unsafe_code)]
fn compress_block(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: gated on the one-time CPUID probe in `x86::available`.
        unsafe { x86::compress(state, block) };
        return;
    }
    compress_scalar(state, block);
}

/// The scalar FIPS 180-4 compression rounds — the portable reference every
/// other backend must match bit for bit.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// SHA-256 compression via the x86 SHA New Instructions.
///
/// `sha256rnds2` retires four compression rounds per instruction and
/// `sha256msg1`/`sha256msg2` fuse the message schedule, finishing a 64-byte
/// block roughly an order of magnitude faster than the scalar rounds — the
/// difference between per-frame HMAC authentication being visible in
/// fixpoint wall time and disappearing into it.  Selected once per process
/// by CPUID probe; every other target falls back to [`compress_scalar`],
/// and `hardware_compress_matches_scalar_rounds` pins the two backends to
/// each other on hosts that have the extension.
///
/// This module is the crate's single `unsafe` exception (see `lib.rs`):
/// `core::arch` intrinsics cannot be called from safe code, and the calls
/// are guarded by the runtime feature probe.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{BLOCK_LEN, K};
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_storeu_si128,
    };
    use std::sync::OnceLock;

    /// One-time CPUID probe for the SHA extension plus the SSSE3/SSE4.1
    /// shuffles the kernel leans on.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }

    /// Compresses one block with the SHA instruction set.
    ///
    /// # Safety
    ///
    /// The caller must have confirmed [`available`] returns `true`: the
    /// function unconditionally executes `sha`/`ssse3`/`sse4.1`
    /// instructions.
    #[target_feature(enable = "sha", enable = "ssse3", enable = "sse4.1")]
    pub unsafe fn compress(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
        // Lane shuffle turning each 16-byte load of big-endian message
        // words into little-endian lanes.
        let mask = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

        // Repack [a,b,c,d] / [e,f,g,h] into the ABEF / CDGH lane order
        // `sha256rnds2` works on.
        let abcd = _mm_loadu_si128(state.as_ptr().cast());
        let efgh = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let cdab = _mm_shuffle_epi32::<0xB1>(abcd);
        let hgfe = _mm_shuffle_epi32::<0x1B>(efgh);
        let mut abef = _mm_alignr_epi8::<8>(cdab, hgfe);
        let mut cdgh = _mm_blend_epi16::<0xF0>(hgfe, cdab);
        let abef_save = abef;
        let cdgh_save = cdgh;

        // m[i % 4] holds the schedule vector w[4i..4i+4] for the group
        // currently `i` groups ahead; each slot is rewritten in place with
        // the vector four groups later.
        let mut m = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), mask),
        ];

        for i in 0..16 {
            // Four rounds: lanes 0..1 of w+k feed the first `rnds2`, lanes
            // 2..3 the second.
            let wk = _mm_add_epi32(m[i % 4], _mm_loadu_si128(K.as_ptr().add(4 * i).cast()));
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32::<0x0E>(wk));
            if i < 12 {
                // w[4(i+4)..4(i+4)+4] from the previous four vectors.
                let t1 = _mm_sha256msg1_epu32(m[i % 4], m[(i + 1) % 4]);
                let t2 = _mm_add_epi32(t1, _mm_alignr_epi8::<4>(m[(i + 3) % 4], m[(i + 2) % 4]));
                m[i % 4] = _mm_sha256msg2_epu32(t2, m[(i + 3) % 4]);
            }
        }

        abef = _mm_add_epi32(abef, abef_save);
        cdgh = _mm_add_epi32(cdgh, cdgh_save);

        // Undo the ABEF / CDGH repacking.
        let feba = _mm_shuffle_epi32::<0x1B>(abef);
        let dchg = _mm_shuffle_epi32::<0xB1>(cdgh);
        let dcba = _mm_blend_epi16::<0xF0>(feba, dchg);
        let hgfe = _mm_alignr_epi8::<8>(dchg, feba);
        _mm_storeu_si128(state.as_mut_ptr().cast::<__m128i>(), dcba);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast::<__m128i>(), hgfe);
    }
}

/// Convenience one-shot hash.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Renders a digest (or any byte slice) as lowercase hex, used in debugging
/// output and in the provenance examples.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        to_hex(d)
    }

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_repeated_vector() {
        // One million 'a' characters (FIPS test vector).
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 5000, 9999, 10_000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn exact_block_boundaries() {
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&data), "len {len}");
        }
    }

    #[test]
    fn to_hex_roundtrips_known_bytes() {
        assert_eq!(to_hex(&[0x00, 0x0f, 0xff]), "000fff");
    }

    /// On hosts with the SHA extension, the hardware kernel must track the
    /// scalar reference rounds bit for bit across chained states.
    #[cfg(target_arch = "x86_64")]
    #[test]
    #[allow(unsafe_code)]
    fn hardware_compress_matches_scalar_rounds() {
        if !x86::available() {
            return;
        }
        let mut hw = H0;
        let mut soft = H0;
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..256 {
            let mut block = [0u8; BLOCK_LEN];
            for b in block.iter_mut() {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                *b = (x >> 56) as u8;
            }
            // SAFETY: gated on `x86::available` above.
            unsafe { x86::compress(&mut hw, &block) };
            compress_scalar(&mut soft, &block);
            assert_eq!(hw, soft);
        }
    }
}
