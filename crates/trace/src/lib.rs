//! # pasn-trace — deterministic flight recorder
//!
//! A structured execution trace for the PASN engine, recorded entirely in
//! **simulated time**.  Nothing in this crate ever consults a wall clock, a
//! thread id, or any other nondeterministic source: every event is stamped
//! with the discrete-event timestamp the engine was processing when it fired,
//! and events are appended in the engine's deterministic replay order.  As a
//! consequence a trace is a pure function of the workload — bit-identical
//! across worker-pool sizes, host machines, and reruns — which makes the
//! recorder double as a CI determinism oracle: if two traces differ, the
//! schedules diverged.
//!
//! The recorder collects five families of data:
//!
//! * **Wave spans** — one [`TraceEventKind::Wave`] per maximal run of
//!   same-instant, same-rank wave-safe work items, fed item by item via
//!   [`TraceRecorder::feed_item`] as the engine replays its effect log;
//! * **Rule firings** — [`TraceEventKind::RuleFire`] with simulated-CPU
//!   attribution, aggregated on demand into a hot-rule profile by
//!   [`TraceRecorder::hot_rules`];
//! * **Frame lifecycles** — ship / drop / duplicate / retransmit / deliver /
//!   ack / dead events keyed by `(link, seq)`, summarised per link by
//!   [`TraceRecorder::link_lifecycles`];
//! * **Dynamics** — handshakes, channel evictions, churn, soft-state expiry,
//!   and retraction cascades;
//! * **Gauges** — periodic [`TraceEventKind::Gauge`] samples (queue depth,
//!   in-flight frames, store/index bytes) at a configurable simulated-time
//!   interval.
//!
//! Storage is an optionally bounded ring buffer ([`TraceConfig::with_ring`]):
//! long runs keep the most recent events and count the evictions.  The whole
//! buffer exports to the Chrome/Perfetto JSON format via
//! [`TraceRecorder::to_chrome_json`] and supports in-process filtering via
//! [`TraceRecorder::query`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Configuration for the flight recorder.
///
/// The default configuration keeps every event (unbounded buffer) and takes
/// no gauge samples; see [`TraceConfig::with_ring`] and
/// [`TraceConfig::with_gauge_interval_us`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum number of retained events; `0` means unbounded.  When the
    /// buffer is full the oldest event is evicted and counted in
    /// [`TraceRecorder::dropped_events`].
    pub ring_capacity: usize,
    /// Simulated-time interval (µs) between gauge samples; `0` disables
    /// gauge sampling.
    pub gauge_interval_us: u64,
}

impl TraceConfig {
    /// An unbounded recorder with no gauge sampling.
    pub fn new() -> Self {
        TraceConfig::default()
    }

    /// Builder: bound the buffer to the `capacity` most recent events
    /// (`0` = unbounded).
    pub fn with_ring(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Builder: sample gauges every `interval_us` microseconds of simulated
    /// time (`0` = off).
    pub fn with_gauge_interval_us(mut self, interval_us: u64) -> Self {
        self.gauge_interval_us = interval_us;
        self
    }
}

/// One recorded event: a simulated-time stamp plus a typed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event in microseconds.
    pub at_us: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The typed payload of a [`TraceEvent`].
///
/// Node ids are the engine's dense `NodeId` indices; `(src, dst)` pairs name
/// a directed link.  Frame `seq` numbers are the per-link transport sequence
/// numbers on fault-plan runs and a trace-local per-link ship ordinal on
/// reliable runs (where the transport assigns none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A maximal run of same-instant, same-rank wave-safe work items — the
    /// unit the parallel driver ships to the worker pool.  `owners` counts
    /// distinct owning nodes (a schedule property, *not* the partition
    /// count, which depends on the worker count and would break trace
    /// determinism).
    Wave {
        /// Same-instant ordering rank of the wave's items.
        rank: u8,
        /// Number of work items in the wave.
        items: u32,
        /// Number of distinct owning nodes across the wave.
        owners: u32,
        /// Total effect-log entries replayed for the wave.
        effects: u32,
    },
    /// One rule firing, with its simulated-CPU charge.
    RuleFire {
        /// Node the rule fired at.
        node: u32,
        /// Rule label from the program text.
        rule: String,
        /// Simulated CPU charged for the firing's index probes, in µs.
        cpu_us: u64,
        /// Number of head tuples emitted by the firing.
        derived: u32,
    },
    /// A sealed frame entered the transport on `(src, dst)`.
    FrameShipped {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Per-link frame sequence number.
        seq: u64,
        /// Tuples carried by the frame.
        tuples: u32,
    },
    /// The fault plan dropped the frame (attempt 0 = first transmission).
    FrameDropped {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Per-link frame sequence number.
        seq: u64,
        /// Transmission attempt that was lost.
        attempt: u32,
    },
    /// The fault plan delivered an extra copy of the frame.
    FrameDuplicated {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Per-link frame sequence number.
        seq: u64,
    },
    /// The retransmit timer fired and the frame was sent again.
    FrameRetransmit {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Per-link frame sequence number.
        seq: u64,
        /// Retransmission attempt number (1 = first retry).
        attempt: u32,
    },
    /// The receiver released the frame to evaluation in sequence order.
    FrameDelivered {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Per-link frame sequence number.
        seq: u64,
    },
    /// A cumulative ack for the link arrived back at the sender.
    FrameAcked {
        /// Sending node (the ack's destination).
        src: u32,
        /// Receiving node (the ack's origin).
        dst: u32,
        /// All frames below this sequence number are acknowledged.
        upto: u64,
    },
    /// The frame exhausted its retry budget (or its link was cut) and its
    /// contents were reconciled out of the fixpoint.
    FrameDead {
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// Per-link frame sequence number.
        seq: u64,
    },
    /// A channel handshake bound `(src, dst)` at `epoch`.
    Handshake {
        /// Initiating node.
        src: u32,
        /// Responding node.
        dst: u32,
        /// Channel epoch established by the handshake.
        epoch: u32,
    },
    /// The channel state for `(src, dst)` was torn down.
    ChannelEvicted {
        /// Initiating node of the evicted channel.
        src: u32,
        /// Responding node of the evicted channel.
        dst: u32,
    },
    /// A scripted network-dynamics event was applied.
    Churn {
        /// Event kind (`link-down`, `node-crash`, `insert`, ...).
        kind: String,
        /// Human-readable subject (the link or node affected).
        subject: String,
    },
    /// Soft-state TTL expiry swept rows at a node.
    Expiry {
        /// Node whose store was swept.
        node: u32,
        /// Number of rows that expired.
        rows: u32,
    },
    /// One provenance-guided retraction (a row actually withdrawn).
    Retraction {
        /// Node the row was withdrawn from.
        node: u32,
        /// Predicate of the withdrawn row.
        pred: String,
        /// Why it was withdrawn (`retracted`, `expired`, `link-cut`, ...).
        reason: String,
    },
    /// A periodic gauge sample.
    Gauge {
        /// Work items pending in the event queue.
        queue_depth: u64,
        /// Frames in flight across all links (fault-plan runs).
        inflight_frames: u64,
        /// Total store residency in bytes.
        store_bytes: u64,
        /// Total secondary-index residency in bytes.
        index_bytes: u64,
    },
}

impl TraceEventKind {
    /// The directed link this event touches, if it is a link-scoped event
    /// (frame lifecycle, handshake, channel eviction).
    pub fn link(&self) -> Option<(u32, u32)> {
        match *self {
            TraceEventKind::FrameShipped { src, dst, .. }
            | TraceEventKind::FrameDropped { src, dst, .. }
            | TraceEventKind::FrameDuplicated { src, dst, .. }
            | TraceEventKind::FrameRetransmit { src, dst, .. }
            | TraceEventKind::FrameDelivered { src, dst, .. }
            | TraceEventKind::FrameAcked { src, dst, .. }
            | TraceEventKind::FrameDead { src, dst, .. }
            | TraceEventKind::Handshake { src, dst, .. }
            | TraceEventKind::ChannelEvicted { src, dst } => Some((src, dst)),
            _ => None,
        }
    }
}

/// Aggregated profile of one rule across the whole trace, from
/// [`TraceRecorder::hot_rules`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleProfile {
    /// Rule label from the program text.
    pub rule: String,
    /// Number of firings.
    pub fires: u64,
    /// Total simulated CPU charged, in µs.
    pub cpu_us: u64,
    /// Total head tuples emitted.
    pub derived: u64,
}

/// Per-link frame-lifecycle totals, from
/// [`TraceRecorder::link_lifecycles`].  On a lossy run these reconstruct the
/// transport counters in `RunMetrics` exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LinkLifecycle {
    /// The directed link `(src, dst)`.
    pub link: (u32, u32),
    /// Frames shipped (first transmissions).
    pub shipped: u64,
    /// Transmissions lost to the fault plan (including lost retries).
    pub dropped: u64,
    /// Duplicate deliveries injected by the fault plan.
    pub duplicated: u64,
    /// Retransmission attempts.
    pub retransmits: u64,
    /// Frames released to evaluation in order.
    pub delivered: u64,
    /// Cumulative acks that arrived back at the sender.
    pub acks: u64,
    /// Frames that exhausted their retry budget or died with their link.
    pub dead: u64,
}

/// An in-flight wave span being accumulated from `feed_item` calls.
#[derive(Debug)]
struct WaveAccum {
    at_us: u64,
    rank: u8,
    items: u32,
    effects: u32,
    owners: Vec<u32>,
}

/// The flight recorder: an append-only (optionally ring-bounded) buffer of
/// [`TraceEvent`]s plus the wave-span accumulator and gauge clock.
///
/// The engine owns one recorder per run when tracing is enabled; tests and
/// tools read it back through [`TraceRecorder::events`],
/// [`TraceRecorder::query`] and the aggregation helpers.
#[derive(Debug)]
pub struct TraceRecorder {
    config: TraceConfig,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    node_labels: Vec<String>,
    wave: Option<WaveAccum>,
    next_gauge_us: u64,
}

impl TraceRecorder {
    /// A recorder for a deployment whose node `i` is labelled
    /// `node_labels[i]` (used by the Perfetto exporter's track names).
    pub fn new(config: TraceConfig, node_labels: Vec<String>) -> Self {
        let next_gauge_us = config.gauge_interval_us;
        TraceRecorder {
            config,
            events: VecDeque::new(),
            dropped: 0,
            node_labels,
            wave: None,
            next_gauge_us,
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.config.ring_capacity > 0 && self.events.len() == self.config.ring_capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Feed one replayed work item into the wave-span accumulator.
    ///
    /// Consecutive items with the same `(at_us, rank)` and `owner:
    /// Some(node)` merge into one [`TraceEventKind::Wave`]; an item with
    /// `owner: None` (engine-global work that can never join a wave) flushes
    /// the open span without starting a new one.  The engine calls this in
    /// effect-replay order, which is identical across worker counts.
    pub fn feed_item(&mut self, at_us: u64, rank: u8, owner: Option<u32>, effects: u32) {
        let Some(owner) = owner else {
            self.flush_wave();
            return;
        };
        if let Some(wave) = &mut self.wave {
            if wave.at_us == at_us && wave.rank == rank {
                wave.items += 1;
                wave.effects += effects;
                if !wave.owners.contains(&owner) {
                    wave.owners.push(owner);
                }
                return;
            }
            self.flush_wave();
        }
        self.wave = Some(WaveAccum {
            at_us,
            rank,
            items: 1,
            effects,
            owners: vec![owner],
        });
    }

    /// Close the open wave span, if any, and append it as an event.
    pub fn flush_wave(&mut self) {
        if let Some(wave) = self.wave.take() {
            self.push(TraceEvent {
                at_us: wave.at_us,
                kind: TraceEventKind::Wave {
                    rank: wave.rank,
                    items: wave.items,
                    owners: wave.owners.len() as u32,
                    effects: wave.effects,
                },
            });
        }
    }

    /// The next pending gauge-sample instant, if gauges are enabled and the
    /// queue head has reached (or passed) it.
    pub fn pending_gauge(&self, head_us: u64) -> Option<u64> {
        if self.config.gauge_interval_us == 0 {
            return None;
        }
        (self.next_gauge_us <= head_us).then_some(self.next_gauge_us)
    }

    /// Advance the gauge clock by one interval after sampling.
    pub fn advance_gauge(&mut self) {
        self.next_gauge_us += self.config.gauge_interval_us;
    }

    /// Finish recording: flushes the trailing wave span.  Idempotent.
    pub fn finish(&mut self) {
        self.flush_wave();
    }

    /// All retained events in recording order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// The display label of node `node`, or `"?"` if unknown.
    pub fn node_label(&self, node: u32) -> &str {
        self.node_labels
            .get(node as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Start a filtered query over the retained events.
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery {
            recorder: self,
            link: None,
            since_us: None,
            until_us: None,
        }
    }

    /// The `k` rules that burned the most simulated CPU, descending (ties
    /// broken by rule label for determinism).
    pub fn hot_rules(&self, k: usize) -> Vec<RuleProfile> {
        let mut by_rule: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
        for event in &self.events {
            if let TraceEventKind::RuleFire {
                rule,
                cpu_us,
                derived,
                ..
            } = &event.kind
            {
                let entry = by_rule.entry(rule.as_str()).or_default();
                entry.0 += 1;
                entry.1 += cpu_us;
                entry.2 += u64::from(*derived);
            }
        }
        let mut profiles: Vec<RuleProfile> = by_rule
            .into_iter()
            .map(|(rule, (fires, cpu_us, derived))| RuleProfile {
                rule: rule.to_string(),
                fires,
                cpu_us,
                derived,
            })
            .collect();
        profiles.sort_by(|a, b| b.cpu_us.cmp(&a.cpu_us).then_with(|| a.rule.cmp(&b.rule)));
        profiles.truncate(k);
        profiles
    }

    /// Frame-lifecycle totals per directed link, sorted by link.
    pub fn link_lifecycles(&self) -> Vec<LinkLifecycle> {
        let mut by_link: BTreeMap<(u32, u32), LinkLifecycle> = BTreeMap::new();
        for event in &self.events {
            let Some(link) = event.kind.link() else {
                continue;
            };
            let entry = by_link.entry(link).or_insert_with(|| LinkLifecycle {
                link,
                ..LinkLifecycle::default()
            });
            match event.kind {
                TraceEventKind::FrameShipped { .. } => entry.shipped += 1,
                TraceEventKind::FrameDropped { .. } => entry.dropped += 1,
                TraceEventKind::FrameDuplicated { .. } => entry.duplicated += 1,
                TraceEventKind::FrameRetransmit { .. } => entry.retransmits += 1,
                TraceEventKind::FrameDelivered { .. } => entry.delivered += 1,
                TraceEventKind::FrameAcked { .. } => entry.acks += 1,
                TraceEventKind::FrameDead { .. } => entry.dead += 1,
                _ => {}
            }
        }
        by_link.into_values().collect()
    }

    /// Export the trace in the Chrome/Perfetto `trace.json` format.
    ///
    /// Layout: pid 0 is the engine (tid 0 = wave spans and dynamics, plus
    /// `C` counter tracks for the gauges); pid `n + 1` is node `n`, with
    /// tid 1 = rule firings (`X` slices whose duration is the simulated CPU
    /// charge), tid 2 = frame lifecycle instants, tid 3 = channel events,
    /// tid 4 = expiry/retraction dynamics.  Timestamps are simulated
    /// microseconds.  The output is deterministic: same trace, same bytes.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let emit = |line: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push('\n');
            out.push_str(&line);
        };
        emit(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"engine\"}}"
                .to_string(),
            &mut out,
            &mut first,
        );
        for (i, label) in self.node_labels.iter().enumerate() {
            emit(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"node {}\"}}}}",
                    i + 1,
                    escape_json(label)
                ),
                &mut out,
                &mut first,
            );
        }
        for event in &self.events {
            let ts = event.at_us;
            let line = match &event.kind {
                TraceEventKind::Wave {
                    rank,
                    items,
                    owners,
                    effects,
                } => format!(
                    "{{\"name\":\"wave r{rank}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":0,\
                     \"pid\":0,\"tid\":0,\"args\":{{\"kind\":\"wave\",\"rank\":{rank},\
                     \"items\":{items},\"owners\":{owners},\"effects\":{effects}}}}}"
                ),
                TraceEventKind::RuleFire {
                    node,
                    rule,
                    cpu_us,
                    derived,
                } => format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{cpu_us},\
                     \"pid\":{},\"tid\":1,\"args\":{{\"kind\":\"rule\",\
                     \"cpu_us\":{cpu_us},\"derived\":{derived}}}}}",
                    escape_json(rule),
                    node + 1
                ),
                TraceEventKind::FrameShipped {
                    src,
                    dst,
                    seq,
                    tuples,
                } => frame_instant(
                    ts,
                    "ship",
                    *src,
                    *dst,
                    *seq,
                    &format!(",\"tuples\":{tuples}"),
                ),
                TraceEventKind::FrameDropped {
                    src,
                    dst,
                    seq,
                    attempt,
                } => frame_instant(
                    ts,
                    "drop",
                    *src,
                    *dst,
                    *seq,
                    &format!(",\"attempt\":{attempt}"),
                ),
                TraceEventKind::FrameDuplicated { src, dst, seq } => {
                    frame_instant(ts, "dup", *src, *dst, *seq, "")
                }
                TraceEventKind::FrameRetransmit {
                    src,
                    dst,
                    seq,
                    attempt,
                } => frame_instant(
                    ts,
                    "retransmit",
                    *src,
                    *dst,
                    *seq,
                    &format!(",\"attempt\":{attempt}"),
                ),
                TraceEventKind::FrameDelivered { src, dst, seq } => {
                    frame_instant(ts, "deliver", *src, *dst, *seq, "")
                }
                TraceEventKind::FrameAcked { src, dst, upto } => format!(
                    "{{\"name\":\"ack {src}\\u2192{dst}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"s\":\"t\",\"pid\":{},\"tid\":2,\"args\":{{\"kind\":\"ack\",\
                     \"src\":{src},\"dst\":{dst},\"upto\":{upto}}}}}",
                    src + 1
                ),
                TraceEventKind::FrameDead { src, dst, seq } => {
                    frame_instant(ts, "dead", *src, *dst, *seq, "")
                }
                TraceEventKind::Handshake { src, dst, epoch } => format!(
                    "{{\"name\":\"handshake {src}\\u2192{dst}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"s\":\"t\",\"pid\":{},\"tid\":3,\"args\":{{\"kind\":\"handshake\",\
                     \"src\":{src},\"dst\":{dst},\"epoch\":{epoch}}}}}",
                    src + 1
                ),
                TraceEventKind::ChannelEvicted { src, dst } => format!(
                    "{{\"name\":\"evict {src}\\u2192{dst}\",\"ph\":\"i\",\"ts\":{ts},\
                     \"s\":\"t\",\"pid\":{},\"tid\":3,\"args\":{{\"kind\":\"evict\",\
                     \"src\":{src},\"dst\":{dst}}}}}",
                    src + 1
                ),
                TraceEventKind::Churn { kind, subject } => format!(
                    "{{\"name\":\"churn {}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"g\",\
                     \"pid\":0,\"tid\":0,\"args\":{{\"kind\":\"churn\",\"churn\":\"{}\",\
                     \"subject\":\"{}\"}}}}",
                    escape_json(kind),
                    escape_json(kind),
                    escape_json(subject)
                ),
                TraceEventKind::Expiry { node, rows } => format!(
                    "{{\"name\":\"expiry\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                     \"pid\":{},\"tid\":4,\"args\":{{\"kind\":\"expiry\",\"rows\":{rows}}}}}",
                    node + 1
                ),
                TraceEventKind::Retraction { node, pred, reason } => format!(
                    "{{\"name\":\"retract {}\",\"ph\":\"i\",\"ts\":{ts},\"s\":\"t\",\
                     \"pid\":{},\"tid\":4,\"args\":{{\"kind\":\"retraction\",\
                     \"pred\":\"{}\",\"reason\":\"{}\"}}}}",
                    escape_json(pred),
                    node + 1,
                    escape_json(pred),
                    escape_json(reason)
                ),
                TraceEventKind::Gauge {
                    queue_depth,
                    inflight_frames,
                    store_bytes,
                    index_bytes,
                } => format!(
                    "{{\"name\":\"queue\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"args\":{{\"depth\":{queue_depth},\"inflight\":{inflight_frames}}}}},\n\
                     {{\"name\":\"memory\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\
                     \"args\":{{\"store_bytes\":{store_bytes},\"index_bytes\":{index_bytes}}}}}"
                ),
            };
            emit(line, &mut out, &mut first);
        }
        let _ = write!(out, "\n],\"droppedEvents\":{}}}", self.dropped);
        out
    }
}

/// A lazy filter over a recorder's events; build with
/// [`TraceRecorder::query`], refine with [`TraceQuery::link`] /
/// [`TraceQuery::between`], then materialise with [`TraceQuery::events`] or
/// [`TraceQuery::count`].
#[derive(Clone, Copy, Debug)]
pub struct TraceQuery<'a> {
    recorder: &'a TraceRecorder,
    link: Option<(u32, u32)>,
    since_us: Option<u64>,
    until_us: Option<u64>,
}

impl<'a> TraceQuery<'a> {
    /// Keep only events touching the directed link `(src, dst)`.
    pub fn link(mut self, src: u32, dst: u32) -> Self {
        self.link = Some((src, dst));
        self
    }

    /// Keep only events with `t0 <= at_us <= t1` (inclusive).
    pub fn between(mut self, t0_us: u64, t1_us: u64) -> Self {
        self.since_us = Some(t0_us);
        self.until_us = Some(t1_us);
        self
    }

    fn matches(&self, event: &TraceEvent) -> bool {
        if let Some(link) = self.link {
            if event.kind.link() != Some(link) {
                return false;
            }
        }
        if let Some(t0) = self.since_us {
            if event.at_us < t0 {
                return false;
            }
        }
        if let Some(t1) = self.until_us {
            if event.at_us > t1 {
                return false;
            }
        }
        true
    }

    /// The matching events, in recording order.
    pub fn events(self) -> Vec<&'a TraceEvent> {
        self.recorder
            .events
            .iter()
            .filter(|e| self.matches(e))
            .collect()
    }

    /// Number of matching events.
    pub fn count(self) -> usize {
        self.recorder
            .events
            .iter()
            .filter(|e| self.matches(e))
            .count()
    }
}

/// Render a frame-lifecycle instant event for the Chrome exporter.
fn frame_instant(ts: u64, kind: &str, src: u32, dst: u32, seq: u64, extra: &str) -> String {
    format!(
        "{{\"name\":\"{kind} {src}\\u2192{dst} #{seq}\",\"ph\":\"i\",\"ts\":{ts},\
         \"s\":\"t\",\"pid\":{},\"tid\":2,\"args\":{{\"kind\":\"{kind}\",\
         \"src\":{src},\"dst\":{dst},\"seq\":{seq}{extra}}}}}",
        src + 1
    )
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder() -> TraceRecorder {
        TraceRecorder::new(TraceConfig::new(), vec!["n0".to_string(), "n1".to_string()])
    }

    #[test]
    fn wave_spans_aggregate_consecutive_same_instant_items() {
        let mut rec = recorder();
        rec.feed_item(10, 0, Some(0), 2);
        rec.feed_item(10, 0, Some(1), 3);
        rec.feed_item(10, 0, Some(0), 1);
        rec.feed_item(20, 0, Some(1), 4); // new instant -> new span
        rec.feed_item(20, 1, Some(1), 1); // new rank -> new span
        rec.feed_item(20, 1, None, 0); // engine-global work breaks the span
        rec.finish();
        let waves: Vec<_> = rec.events().map(|e| (e.at_us, e.kind.clone())).collect();
        assert_eq!(
            waves,
            vec![
                (
                    10,
                    TraceEventKind::Wave {
                        rank: 0,
                        items: 3,
                        owners: 2,
                        effects: 6
                    }
                ),
                (
                    20,
                    TraceEventKind::Wave {
                        rank: 0,
                        items: 1,
                        owners: 1,
                        effects: 4
                    }
                ),
                (
                    20,
                    TraceEventKind::Wave {
                        rank: 1,
                        items: 1,
                        owners: 1,
                        effects: 1
                    }
                ),
            ]
        );
    }

    #[test]
    fn finish_is_idempotent() {
        let mut rec = recorder();
        rec.feed_item(5, 0, Some(0), 1);
        rec.finish();
        rec.finish();
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn ring_buffer_bounds_retention_and_counts_evictions() {
        let mut rec = TraceRecorder::new(TraceConfig::new().with_ring(2), vec![]);
        for seq in 0..5 {
            rec.push(TraceEvent {
                at_us: seq,
                kind: TraceEventKind::FrameShipped {
                    src: 0,
                    dst: 1,
                    seq,
                    tuples: 1,
                },
            });
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped_events(), 3);
        let first = rec.events().next().unwrap();
        assert_eq!(first.at_us, 3, "oldest events are evicted first");
    }

    #[test]
    fn gauge_clock_fires_at_interval_boundaries() {
        let mut rec = TraceRecorder::new(TraceConfig::new().with_gauge_interval_us(100), vec![]);
        assert_eq!(rec.pending_gauge(99), None);
        assert_eq!(rec.pending_gauge(100), Some(100));
        rec.advance_gauge();
        assert_eq!(rec.pending_gauge(150), None);
        assert_eq!(rec.pending_gauge(350), Some(200));
        let off = TraceRecorder::new(TraceConfig::new(), vec![]);
        assert_eq!(off.pending_gauge(u64::MAX), None);
    }

    #[test]
    fn hot_rules_sorts_by_cpu_then_label() {
        let mut rec = recorder();
        for (rule, cpu) in [("r2", 5), ("r1", 5), ("r2", 10), ("r3", 1)] {
            rec.push(TraceEvent {
                at_us: 0,
                kind: TraceEventKind::RuleFire {
                    node: 0,
                    rule: rule.to_string(),
                    cpu_us: cpu,
                    derived: 2,
                },
            });
        }
        let profiles = rec.hot_rules(2);
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].rule, "r2");
        assert_eq!(profiles[0].fires, 2);
        assert_eq!(profiles[0].cpu_us, 15);
        assert_eq!(profiles[0].derived, 4);
        assert_eq!(profiles[1].rule, "r1");
    }

    #[test]
    fn link_lifecycles_count_each_stage() {
        let mut rec = recorder();
        let link = |kind| TraceEvent { at_us: 0, kind };
        rec.push(link(TraceEventKind::FrameShipped {
            src: 0,
            dst: 1,
            seq: 0,
            tuples: 3,
        }));
        rec.push(link(TraceEventKind::FrameDropped {
            src: 0,
            dst: 1,
            seq: 0,
            attempt: 0,
        }));
        rec.push(link(TraceEventKind::FrameRetransmit {
            src: 0,
            dst: 1,
            seq: 0,
            attempt: 1,
        }));
        rec.push(link(TraceEventKind::FrameDelivered {
            src: 0,
            dst: 1,
            seq: 0,
        }));
        rec.push(link(TraceEventKind::FrameAcked {
            src: 0,
            dst: 1,
            upto: 1,
        }));
        rec.push(link(TraceEventKind::FrameShipped {
            src: 1,
            dst: 0,
            seq: 0,
            tuples: 1,
        }));
        let cycles = rec.link_lifecycles();
        assert_eq!(cycles.len(), 2);
        assert_eq!(
            cycles[0],
            LinkLifecycle {
                link: (0, 1),
                shipped: 1,
                dropped: 1,
                duplicated: 0,
                retransmits: 1,
                delivered: 1,
                acks: 1,
                dead: 0,
            }
        );
        assert_eq!(cycles[1].link, (1, 0));
        assert_eq!(cycles[1].shipped, 1);
    }

    #[test]
    fn query_filters_by_link_and_time() {
        let mut rec = recorder();
        rec.push(TraceEvent {
            at_us: 10,
            kind: TraceEventKind::FrameShipped {
                src: 0,
                dst: 1,
                seq: 0,
                tuples: 1,
            },
        });
        rec.push(TraceEvent {
            at_us: 20,
            kind: TraceEventKind::FrameShipped {
                src: 1,
                dst: 0,
                seq: 0,
                tuples: 1,
            },
        });
        rec.push(TraceEvent {
            at_us: 30,
            kind: TraceEventKind::FrameAcked {
                src: 0,
                dst: 1,
                upto: 1,
            },
        });
        assert_eq!(rec.query().link(0, 1).count(), 2);
        assert_eq!(rec.query().link(0, 1).between(0, 15).count(), 1);
        assert_eq!(rec.query().between(15, 30).count(), 2);
        let hits = rec.query().link(1, 0).events();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].at_us, 20);
    }

    #[test]
    fn chrome_export_is_valid_shape_and_escapes_strings() {
        let mut rec = TraceRecorder::new(TraceConfig::new(), vec!["a\"b".to_string()]);
        rec.push(TraceEvent {
            at_us: 7,
            kind: TraceEventKind::RuleFire {
                node: 0,
                rule: "r\\1".to_string(),
                cpu_us: 3,
                derived: 1,
            },
        });
        rec.push(TraceEvent {
            at_us: 9,
            kind: TraceEventKind::Gauge {
                queue_depth: 4,
                inflight_frames: 2,
                store_bytes: 100,
                index_bytes: 50,
            },
        });
        let json = rec.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"node a\\\"b\""));
        assert!(json.contains("\"name\":\"r\\\\1\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.ends_with("],\"droppedEvents\":0}"));
        // Every line between the brackets must be a JSON object with a
        // trailing comma except the last.
        let body = json
            .strip_prefix("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
            .unwrap();
        assert!(body.contains("\"ts\":7"));
    }
}
