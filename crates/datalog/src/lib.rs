//! # pasn-datalog
//!
//! The NDlog / SeNDlog language front-end for the *Provenance-aware Secure
//! Networks* reproduction (Zhou, Cronin, Loo — ICDE 2008).
//!
//! Declarative networks are specified in **Network Datalog (NDlog)**, a
//! distributed recursive query language; **Secure Network Datalog (SeNDlog)**
//! adds security contexts (`At P:` blocks), the `says` authentication
//! operator and explicit export annotations (`head(...)@Z`).  This crate
//! turns program text into validated, localized, planned rules ready for the
//! distributed evaluator in `pasn-engine`:
//!
//! * [`value`] — the runtime value model shared by constants and tuples;
//! * [`ast`] — programs, rules, atoms, expressions;
//! * [`lexer`] / [`parser`] — the surface syntax of Section 2 of the paper;
//! * [`validate`] — safety (range restriction), location-specifier and
//!   aggregate checks;
//! * [`localize`] — the localization rewrite that turns multi-site rule
//!   bodies into single-site rules plus forwarding rules;
//! * [`plan`] — per-rule delta plans for semi-naive evaluation, and
//!   [`plan::compile_program`] tying the whole pipeline together.
//!
//! ```
//! use pasn_datalog::prelude::*;
//!
//! let program = parse_program(
//!     "r1 reachable(@S,D) :- link(@S,D).\n\
//!      r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).",
//! ).unwrap();
//! let compiled = compile_program(&program).unwrap();
//! // The localization rewrite split r2 into a forwarding rule plus a
//! // single-site join.
//! assert_eq!(compiled.program.rules.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod localize;
pub mod parser;
pub mod plan;
pub mod symbols;
pub mod validate;
pub mod value;

pub use ast::{AggFunc, Atom, BinOp, BodyLiteral, Expr, Fact, Program, Rule, Term};
pub use parser::{parse_program, parse_rule, ParseError};
pub use plan::{
    compile_program, CompiledProgram, DeltaPlan, IndexSpec, JoinStep, PlanError, PlanStep,
    RulePlan, SlotTerm, VarSlots,
};
pub use symbols::{PredId, Symbols};
pub use value::{Address, Value};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::ast::{AggFunc, Atom, BinOp, BodyLiteral, Expr, Fact, Program, Rule, Term};
    pub use crate::localize::localize_program;
    pub use crate::parser::{parse_program, parse_rule};
    pub use crate::plan::{compile_program, CompiledProgram, RulePlan};
    pub use crate::validate::validate_program;
    pub use crate::value::{Address, Value};
}
