//! Runtime values carried in tuples.
//!
//! NDlog predicates range over a small set of scalar types: network
//! addresses (the values bound to location-specifier attributes), integers,
//! strings, booleans and lists (used for path vectors in the Best-Path
//! query).  The same type is used for constants in parsed programs and for
//! attribute values in materialised tuples, so the parser, the engine and the
//! provenance layer all agree on equality and hashing.

use std::fmt;

/// Identifier of a network node / principal as it appears inside tuple
/// attributes.  The mapping to transport-level node identifiers is
/// maintained by the runtime (`pasn-engine`).
pub type Address = u32;

/// A scalar or list value stored in a tuple attribute.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Value {
    /// A signed integer (path costs, counters, thresholds).
    Int(i64),
    /// A string constant.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// A network address / principal identifier (the type of location
    /// specifier attributes).
    Addr(Address),
    /// A list of values (path vectors, provenance digests).
    List(Vec<Value>),
}

impl Value {
    /// Human-readable type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Addr(_) => "address",
            Value::List(_) => "list",
        }
    }

    /// Extracts an integer, if this value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts an address, if this value is one.
    pub fn as_addr(&self) -> Option<Address> {
        match self {
            Value::Addr(a) => Some(*a),
            _ => None,
        }
    }

    /// Extracts a boolean, if this value is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts a list, if this value is one.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// A stable byte encoding used for hashing, signatures and wire
    /// transport.  The encoding is self-delimiting: a tag byte followed by a
    /// fixed- or length-prefixed payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                out.extend_from_slice(&i.to_be_bytes());
            }
            Value::Str(s) => {
                out.push(1);
                out.extend_from_slice(&(s.len() as u32).to_be_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(2);
                out.push(*b as u8);
            }
            Value::Addr(a) => {
                out.push(3);
                out.extend_from_slice(&a.to_be_bytes());
            }
            Value::List(items) => {
                out.push(4);
                out.extend_from_slice(&(items.len() as u32).to_be_bytes());
                for item in items {
                    item.encode(out);
                }
            }
        }
    }

    /// Decodes a value previously produced by [`Value::encode`]; returns the
    /// value and the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Option<(Value, usize)> {
        let tag = *bytes.first()?;
        match tag {
            0 => {
                let raw: [u8; 8] = bytes.get(1..9)?.try_into().ok()?;
                Some((Value::Int(i64::from_be_bytes(raw)), 9))
            }
            1 => {
                let len_raw: [u8; 4] = bytes.get(1..5)?.try_into().ok()?;
                let len = u32::from_be_bytes(len_raw) as usize;
                let s = bytes.get(5..5 + len)?;
                Some((Value::Str(String::from_utf8(s.to_vec()).ok()?), 5 + len))
            }
            2 => Some((Value::Bool(*bytes.get(1)? != 0), 2)),
            3 => {
                let raw: [u8; 4] = bytes.get(1..5)?.try_into().ok()?;
                Some((Value::Addr(u32::from_be_bytes(raw)), 5))
            }
            4 => {
                let len_raw: [u8; 4] = bytes.get(1..5)?.try_into().ok()?;
                let len = u32::from_be_bytes(len_raw) as usize;
                let mut offset = 5;
                let mut items = Vec::with_capacity(len);
                for _ in 0..len {
                    let (item, used) = Value::decode(&bytes[offset..])?;
                    items.push(item);
                    offset += used;
                }
                Some((Value::List(items), offset))
            }
            _ => None,
        }
    }

    /// Number of bytes [`Value::encode`] produces for this value; this is
    /// what the bandwidth accounting in `pasn-net` charges per attribute.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Int(_) => 9,
            Value::Str(s) => 5 + s.len(),
            Value::Bool(_) => 2,
            Value::Addr(_) => 5,
            Value::List(items) => 5 + items.iter().map(|i| i.encoded_len()).sum::<usize>(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Addr(a) => write!(f, "n{a}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Addr(3).as_addr(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(
            Value::List(vec![Value::Int(1)]).as_list(),
            Some(&[Value::Int(1)][..])
        );
        assert_eq!(Value::Int(1).type_name(), "int");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Addr(4).to_string(), "n4");
        assert_eq!(
            Value::List(vec![Value::Addr(1), Value::Addr(2)]).to_string(),
            "[n1,n2]"
        );
    }

    #[test]
    fn encode_decode_roundtrip_examples() {
        let values = vec![
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::Str("reachable".into()),
            Value::Str(String::new()),
            Value::Bool(false),
            Value::Addr(u32::MAX),
            Value::List(vec![]),
            Value::List(vec![
                Value::Addr(1),
                Value::List(vec![Value::Int(2), Value::Str("x".into())]),
            ]),
        ];
        for v in values {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(buf.len(), v.encoded_len(), "length accounting for {v}");
            let (decoded, used) = Value::decode(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn decode_rejects_truncated_and_garbage() {
        assert!(Value::decode(&[]).is_none());
        assert!(Value::decode(&[0, 1, 2]).is_none());
        assert!(Value::decode(&[1, 0, 0, 0, 10, b'a']).is_none());
        assert!(Value::decode(&[99]).is_none());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(Value::Int),
            "[a-z]{0,8}".prop_map(Value::Str),
            any::<bool>().prop_map(Value::Bool),
            any::<u32>().prop_map(Value::Addr),
        ];
        leaf.prop_recursive(3, 16, 4, |inner| {
            proptest::collection::vec(inner, 0..4).prop_map(Value::List)
        })
    }

    proptest! {
        #[test]
        fn prop_encode_decode_roundtrip(v in arb_value()) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            prop_assert_eq!(buf.len(), v.encoded_len());
            let (decoded, used) = Value::decode(&buf).unwrap();
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, buf.len());
        }
    }
}
