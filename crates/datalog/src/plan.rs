//! Rule planning for semi-naive, pipelined evaluation.
//!
//! The P2 system compiles each rule into a dataflow of relational operators;
//! this reproduction keeps an interpreted engine, but still pre-computes for
//! every rule the *delta plans* that semi-naive evaluation needs: one plan
//! per body atom, describing how to extend a newly arrived tuple of that
//! atom's predicate with joins against the other body atoms, interleaved with
//! filters and assignments as soon as their inputs are bound.

use crate::ast::{Atom, BodyLiteral, Expr, Program, Rule, Term};
use crate::localize::{localize_program, LocalizeError};
use crate::validate::{validate_program, ValidationError};
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced while preparing a program for execution.
#[derive(Clone, Debug)]
pub enum PlanError {
    /// The program failed static validation.
    Validation(Vec<ValidationError>),
    /// A rule could not be localized.
    Localize(LocalizeError),
    /// A rule could not be planned (e.g. a cross-product with no shared
    /// variables is required but disallowed).
    Plan {
        /// Label of the offending rule.
        rule: String,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Validation(errs) => {
                writeln!(f, "program failed validation:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            PlanError::Localize(e) => write!(f, "{e}"),
            PlanError::Plan { rule, message } => write!(f, "cannot plan rule {rule}: {message}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<LocalizeError> for PlanError {
    fn from(e: LocalizeError) -> Self {
        PlanError::Localize(e)
    }
}

/// One step of a delta plan.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanStep {
    /// Join against all currently stored tuples of this atom's predicate.
    Join(Atom),
    /// Evaluate a filter over the bound variables and drop non-matching
    /// bindings.
    Filter(Expr),
    /// Bind a new variable from an expression over bound variables.
    Assign {
        /// The variable being bound.
        var: String,
        /// The defining expression.
        expr: Expr,
    },
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStep::Join(a) => write!(f, "join {a}"),
            PlanStep::Filter(e) => write!(f, "filter {e}"),
            PlanStep::Assign { var, expr } => write!(f, "assign {var} := {expr}"),
        }
    }
}

/// The plan triggered when a new tuple of `delta.predicate` arrives.
#[derive(Clone, PartialEq, Debug)]
pub struct DeltaPlan {
    /// Index of the delta atom within the rule body (among atoms only).
    pub delta_index: usize,
    /// The atom whose new tuples trigger this plan.
    pub delta: Atom,
    /// Remaining work, in execution order.
    pub steps: Vec<PlanStep>,
}

/// A rule together with its per-delta execution plans.
#[derive(Clone, PartialEq, Debug)]
pub struct RulePlan {
    /// The (localized) rule this plan executes.
    pub rule: Rule,
    /// One delta plan per body atom.
    pub deltas: Vec<DeltaPlan>,
}

impl RulePlan {
    /// Plans the delta evaluations for one localized rule.
    pub fn for_rule(rule: &Rule) -> Result<RulePlan, PlanError> {
        let atoms: Vec<(usize, Atom)> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                BodyLiteral::Atom(a) => Some(a.clone()),
                _ => None,
            })
            .enumerate()
            .collect();
        if atoms.is_empty() {
            return Err(PlanError::Plan {
                rule: rule.label.clone(),
                message: "rule body contains no atoms".into(),
            });
        }
        let non_atoms: Vec<BodyLiteral> = rule
            .body
            .iter()
            .filter(|l| !matches!(l, BodyLiteral::Atom(_)))
            .cloned()
            .collect();

        let mut deltas = Vec::with_capacity(atoms.len());
        for (delta_index, delta_atom) in &atoms {
            let mut bound: BTreeSet<String> = delta_atom.variables();
            if let Some(Term::Variable(v)) = &rule.context {
                bound.insert(v.clone());
            }
            let mut remaining_atoms: Vec<Atom> = atoms
                .iter()
                .filter(|(i, _)| i != delta_index)
                .map(|(_, a)| a.clone())
                .collect();
            let mut remaining_other = non_atoms.clone();
            let mut steps = Vec::new();

            while !remaining_atoms.is_empty() || !remaining_other.is_empty() {
                // 1. Emit any filter / assignment whose inputs are all bound.
                if let Some(pos) = remaining_other.iter().position(|lit| {
                    let mut used = BTreeSet::new();
                    match lit {
                        BodyLiteral::Filter(e) => e.variables(&mut used),
                        BodyLiteral::Assign { expr, .. } => expr.variables(&mut used),
                        BodyLiteral::Atom(_) => unreachable!(),
                    }
                    used.iter().all(|v| bound.contains(v))
                }) {
                    let lit = remaining_other.remove(pos);
                    match lit {
                        BodyLiteral::Filter(e) => steps.push(PlanStep::Filter(e)),
                        BodyLiteral::Assign { var, expr } => {
                            bound.insert(var.clone());
                            steps.push(PlanStep::Assign { var, expr });
                        }
                        BodyLiteral::Atom(_) => unreachable!(),
                    }
                    continue;
                }
                // 2. Otherwise join the next atom, preferring one that shares
                //    variables with the bound set (avoiding cross products
                //    whenever the rule graph is connected).
                if remaining_atoms.is_empty() {
                    // Only filters/assignments left but none is ready: their
                    // variables can never become bound.
                    let lit = &remaining_other[0];
                    return Err(PlanError::Plan {
                        rule: rule.label.clone(),
                        message: format!("`{lit}` references variables never bound by the body"),
                    });
                }
                let pos = remaining_atoms
                    .iter()
                    .position(|a| a.variables().iter().any(|v| bound.contains(v)))
                    .unwrap_or(0);
                let atom = remaining_atoms.remove(pos);
                bound.extend(atom.variables());
                steps.push(PlanStep::Join(atom));
            }

            deltas.push(DeltaPlan {
                delta_index: *delta_index,
                delta: delta_atom.clone(),
                steps,
            });
        }
        Ok(RulePlan {
            rule: rule.clone(),
            deltas,
        })
    }
}

/// A fully prepared program: validated, localized, and planned.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The localized program (rules are single-site).
    pub program: Program,
    /// One plan per localized rule, in rule order.
    pub plans: Vec<RulePlan>,
}

impl CompiledProgram {
    /// All plans whose delta atom matches `predicate`.
    pub fn plans_for_predicate<'a>(
        &'a self,
        predicate: &'a str,
    ) -> impl Iterator<Item = (&'a RulePlan, &'a DeltaPlan)> + 'a {
        self.plans.iter().flat_map(move |rp| {
            rp.deltas
                .iter()
                .filter(move |d| d.delta.predicate == predicate)
                .map(move |d| (rp, d))
        })
    }
}

/// Validates, localizes, and plans an NDlog / SeNDlog program.
pub fn compile_program(program: &Program) -> Result<CompiledProgram, PlanError> {
    validate_program(program).map_err(PlanError::Validation)?;
    let localized = localize_program(program)?;
    // The localized program must itself still be valid.
    validate_program(&localized).map_err(PlanError::Validation)?;
    let mut plans = Vec::with_capacity(localized.rules.len());
    for rule in &localized.rules {
        plans.push(RulePlan::for_rule(rule)?);
    }
    Ok(CompiledProgram {
        program: localized,
        plans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const BEST_PATH: &str = "
        sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
        sp2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C := C1 + C2, P := f_concat(S,P2).
        sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C).
        sp4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
    ";

    #[test]
    fn compiles_the_reachability_program() {
        let program = parse_program(
            "r1 reachable(@S,D) :- link(@S,D).\n r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).",
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();
        // r1 + (r2 localized into 2 rules) = 3 rules.
        assert_eq!(compiled.plans.len(), 3);
        // Every body atom of every rule has a delta plan.
        for plan in &compiled.plans {
            assert_eq!(plan.deltas.len(), plan.rule.body_atoms().count());
        }
        // New link tuples trigger r1 and the forwarding rule.
        let link_triggered: Vec<_> = compiled.plans_for_predicate("link").collect();
        assert_eq!(link_triggered.len(), 2);
        // New link_at_z tuples trigger the localized join.
        assert_eq!(compiled.plans_for_predicate("link_at_z").count(), 1);
    }

    #[test]
    fn delta_plans_order_assignments_after_their_inputs() {
        let program = parse_program(BEST_PATH).unwrap();
        let compiled = compile_program(&program).unwrap();
        // Find the localized sp2 join rule (its body joins link_at_z with path).
        let sp2_plan = compiled
            .plans
            .iter()
            .find(|p| p.rule.label == "sp2")
            .expect("sp2 exists");
        for delta in &sp2_plan.deltas {
            let mut seen_join = delta.steps.is_empty();
            let mut c_assigned = false;
            for step in &delta.steps {
                match step {
                    PlanStep::Join(_) => seen_join = true,
                    PlanStep::Assign { var, .. } if var == "C" => {
                        // C := C1 + C2 needs both link (C1) and path (C2)
                        // tuples, so it must come after the remaining join.
                        assert!(seen_join, "assignment of C before join in {delta:?}");
                        c_assigned = true;
                    }
                    _ => {}
                }
            }
            assert!(c_assigned, "C is always assigned");
        }
    }

    #[test]
    fn aggregation_rule_plans_single_delta() {
        let program = parse_program(BEST_PATH).unwrap();
        let compiled = compile_program(&program).unwrap();
        let sp3 = compiled
            .plans
            .iter()
            .find(|p| p.rule.label == "sp3")
            .unwrap();
        assert_eq!(sp3.deltas.len(), 1);
        assert!(sp3.deltas[0].steps.is_empty());
        assert!(sp3.rule.head.has_aggregate());
    }

    #[test]
    fn sendlog_program_compiles_without_localization() {
        let program = parse_program(
            "At S:\n s1 reachable(S,D) :- link(S,D).\n s2 linkD(D,S)@D :- link(S,D).\n s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).",
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();
        assert_eq!(compiled.plans.len(), 3);
        assert!(compiled.program.uses_sendlog());
    }

    #[test]
    fn invalid_program_is_rejected_with_all_errors() {
        let program = parse_program("r1 p(@S,D) :- q(@S).\n r2 x(@S) :- y(@S), Z > 1.").unwrap();
        match compile_program(&program) {
            Err(PlanError::Validation(errs)) => assert!(errs.len() >= 2),
            other => panic!("expected validation failure, got {other:?}"),
        }
    }

    #[test]
    fn headless_body_is_rejected() {
        // A rule whose body is only a filter cannot be planned.
        let rule = Rule {
            label: "weird".into(),
            context: None,
            head: Atom::new("p", vec![Term::constant(1i64)]).at(0),
            body: vec![BodyLiteral::Filter(Expr::constant(true))],
        };
        let err = RulePlan::for_rule(&rule).unwrap_err();
        assert!(err.to_string().contains("no atoms"));
    }

    #[test]
    fn plan_display_is_readable() {
        let program = parse_program("r1 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).").unwrap();
        let compiled = compile_program(&program).unwrap();
        let rendered: Vec<String> = compiled.plans[1]
            .deltas
            .iter()
            .flat_map(|d| d.steps.iter().map(|s| s.to_string()))
            .collect();
        assert!(rendered.iter().any(|s| s.starts_with("join ")));
    }
}
