//! Rule planning for semi-naive, pipelined evaluation.
//!
//! The P2 system compiles each rule into a dataflow of relational operators;
//! this reproduction keeps an interpreted engine, but still pre-computes for
//! every rule the *delta plans* that semi-naive evaluation needs: one plan
//! per body atom, describing how to extend a newly arrived tuple of that
//! atom's predicate with joins against the other body atoms, interleaved with
//! filters and assignments as soon as their inputs are bound.
//!
//! Two pieces of static analysis make the runtime's joins cheap:
//!
//! * **Slot assignment** — every variable of a rule gets a dense slot id in
//!   the rule's [`VarSlots`] table, and every atom argument is compiled to a
//!   [`SlotTerm`], so the evaluator can keep bindings in a flat
//!   `Vec<Option<Value>>` instead of a string-keyed map.
//! * **Join-key inference** — for each [`JoinStep`] the planner records which
//!   argument positions are already bound when the join runs (constants, or
//!   variables bound by the delta atom / earlier steps).  Those positions
//!   become the `key_columns` of an [`IndexSpec`], which the store layer uses
//!   to maintain a secondary hash index: the join then probes the index with
//!   the rendered key instead of scanning the whole relation.

use crate::ast::{Atom, BodyLiteral, Expr, Program, Rule, Term};
use crate::localize::{localize_program, LocalizeError};
use crate::symbols::{PredId, Symbols};
use crate::validate::{validate_program, ValidationError};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Errors produced while preparing a program for execution.
#[derive(Clone, Debug)]
pub enum PlanError {
    /// The program failed static validation.
    Validation(Vec<ValidationError>),
    /// A rule could not be localized.
    Localize(LocalizeError),
    /// A rule could not be planned (e.g. a cross-product with no shared
    /// variables is required but disallowed).
    Plan {
        /// Label of the offending rule.
        rule: String,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Validation(errs) => {
                writeln!(f, "program failed validation:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            PlanError::Localize(e) => write!(f, "{e}"),
            PlanError::Plan { rule, message } => write!(f, "cannot plan rule {rule}: {message}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<LocalizeError> for PlanError {
    fn from(e: LocalizeError) -> Self {
        PlanError::Localize(e)
    }
}

/// Dense slot assignment for the variables of one rule.
///
/// Extends the var-table idea of the provenance layer to rule evaluation:
/// every variable that occurs anywhere in a rule (context, head, body atoms,
/// `says` / export annotations, assignments, filters) is assigned a dense
/// `usize` slot at plan time, in deterministic first-occurrence order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VarSlots {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarSlots {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the slot of `name`, allocating a fresh one on first sight.
    pub fn get_or_insert(&mut self, name: &str) -> usize {
        if let Some(&slot) = self.index.get(name) {
            return slot;
        }
        let slot = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), slot);
        slot
    }

    /// The slot of `name`, if assigned.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The variable name occupying `slot`.
    pub fn name(&self, slot: usize) -> Option<&str> {
        self.names.get(slot).map(String::as_str)
    }

    /// Number of assigned slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variable has been assigned a slot.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// An atom argument compiled against a rule's [`VarSlots`].
#[derive(Clone, PartialEq, Debug)]
pub enum SlotTerm {
    /// A constant value that must match exactly.
    Const(Value),
    /// A variable, referenced by its dense slot id.
    Slot(usize),
    /// The anonymous variable `_` (always matches, binds nothing).
    Wildcard,
}

impl SlotTerm {
    fn compile(term: &Term, slots: &mut VarSlots) -> SlotTerm {
        match term {
            Term::Constant(c) => SlotTerm::Const(c.clone()),
            Term::Variable(v) | Term::Aggregate(_, v) => SlotTerm::Slot(slots.get_or_insert(v)),
            Term::Wildcard => SlotTerm::Wildcard,
        }
    }
}

/// A secondary-index requirement emitted by join-key inference: the store
/// should maintain a hash index over `predicate` keyed on `key_columns`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexSpec {
    /// The indexed predicate.
    pub predicate: String,
    /// Argument positions forming the index key, in ascending order.
    pub key_columns: Vec<usize>,
    /// The predicate's interned id in the compiled program's [`Symbols`]
    /// table — what the store layer actually keys on.
    pub pred: PredId,
}

/// A join against the stored tuples of one predicate, with its compiled
/// argument patterns and inferred index key.
#[derive(Clone, PartialEq, Debug)]
pub struct JoinStep {
    /// The joined atom as written in the rule (kept for provenance keys and
    /// diagnostics).
    pub atom: Atom,
    /// The joined predicate's interned id — the evaluator dispatches and
    /// probes by this `u32` instead of comparing predicate strings.
    pub pred: PredId,
    /// The atom's arguments compiled to slot terms.
    pub args: Vec<SlotTerm>,
    /// The `says` annotation compiled to a slot term, if present.
    pub says: Option<SlotTerm>,
    /// Argument positions guaranteed to be bound when this join runs
    /// (constants and previously bound variables).  Empty means the join
    /// must fall back to a full scan.
    pub key_columns: Vec<usize>,
}

impl JoinStep {
    /// The index spec this join probes, if it has any bound key columns.
    pub fn index_spec(&self) -> Option<IndexSpec> {
        if self.key_columns.is_empty() {
            None
        } else {
            Some(IndexSpec {
                predicate: self.atom.predicate.clone(),
                key_columns: self.key_columns.clone(),
                pred: self.pred,
            })
        }
    }
}

/// One step of a delta plan.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanStep {
    /// Join against the stored tuples of the step's predicate, probing a
    /// secondary index when key columns are bound.
    Join(JoinStep),
    /// Evaluate a filter over the bound variables and drop non-matching
    /// bindings.
    Filter(Expr),
    /// Bind a new variable from an expression over bound variables.
    Assign {
        /// The variable being bound.
        var: String,
        /// The variable's dense slot.
        slot: usize,
        /// The defining expression.
        expr: Expr,
    },
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStep::Join(j) => {
                write!(f, "join {}", j.atom)?;
                if !j.key_columns.is_empty() {
                    let cols: Vec<String> = j.key_columns.iter().map(|c| c.to_string()).collect();
                    write!(f, " via index({})", cols.join(","))?;
                }
                Ok(())
            }
            PlanStep::Filter(e) => write!(f, "filter {e}"),
            PlanStep::Assign { var, expr, .. } => write!(f, "assign {var} := {expr}"),
        }
    }
}

/// The plan triggered when a new tuple of `delta.predicate` arrives.
#[derive(Clone, PartialEq, Debug)]
pub struct DeltaPlan {
    /// Index of the delta atom within the rule body (among atoms only).
    pub delta_index: usize,
    /// The atom whose new tuples trigger this plan.
    pub delta: Atom,
    /// The delta predicate's interned id (plan dispatch compares this).
    pub delta_pred: PredId,
    /// The delta atom's arguments compiled to slot terms.
    pub delta_args: Vec<SlotTerm>,
    /// The delta atom's `says` annotation compiled to a slot term.
    pub delta_says: Option<SlotTerm>,
    /// Remaining work, in execution order.
    pub steps: Vec<PlanStep>,
    /// Secondary indexes this plan's joins probe (one per indexed join).
    pub index_specs: Vec<IndexSpec>,
}

/// A rule together with its per-delta execution plans.
#[derive(Clone, PartialEq, Debug)]
pub struct RulePlan {
    /// The (localized) rule this plan executes.
    pub rule: Rule,
    /// The head predicate's interned id.
    pub head_pred: PredId,
    /// Dense slot assignment for every variable of the rule.
    pub slots: Arc<VarSlots>,
    /// Slot of the SeNDlog context variable, if the rule has one.
    pub context_slot: Option<usize>,
    /// One delta plan per body atom.
    pub deltas: Vec<DeltaPlan>,
}

impl RulePlan {
    /// Plans the delta evaluations for one rule using a scratch predicate
    /// interner (tests and ad-hoc planning; [`compile_program`] uses
    /// [`RulePlan::for_rule_in`] so every plan shares one table).
    pub fn for_rule(rule: &Rule) -> Result<RulePlan, PlanError> {
        Self::for_rule_in(rule, &mut Symbols::new())
    }

    /// Plans the delta evaluations for one localized rule, interning every
    /// predicate it mentions into `symbols`.
    pub fn for_rule_in(rule: &Rule, symbols: &mut Symbols) -> Result<RulePlan, PlanError> {
        // Slot assignment: walk the rule in deterministic source order so
        // slot ids are stable across compilations.
        let mut slots = VarSlots::new();
        let context_slot = match &rule.context {
            Some(Term::Variable(v)) => Some(slots.get_or_insert(v)),
            _ => None,
        };
        for term in rule
            .head
            .args
            .iter()
            .chain(rule.head.export_to.iter())
            .chain(rule.head.says.iter())
        {
            SlotTerm::compile(term, &mut slots);
        }
        for lit in &rule.body {
            match lit {
                BodyLiteral::Atom(atom) => {
                    for term in atom.says.iter().chain(atom.args.iter()) {
                        SlotTerm::compile(term, &mut slots);
                    }
                }
                BodyLiteral::Assign { var, expr } => {
                    let mut used = BTreeSet::new();
                    expr.variables(&mut used);
                    for v in used {
                        slots.get_or_insert(&v);
                    }
                    slots.get_or_insert(var);
                }
                BodyLiteral::Filter(expr) => {
                    let mut used = BTreeSet::new();
                    expr.variables(&mut used);
                    for v in used {
                        slots.get_or_insert(&v);
                    }
                }
            }
        }

        let atoms: Vec<(usize, Atom)> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                BodyLiteral::Atom(a) => Some(a.clone()),
                _ => None,
            })
            .enumerate()
            .collect();
        if atoms.is_empty() {
            return Err(PlanError::Plan {
                rule: rule.label.clone(),
                message: "rule body contains no atoms".into(),
            });
        }
        let non_atoms: Vec<BodyLiteral> = rule
            .body
            .iter()
            .filter(|l| !matches!(l, BodyLiteral::Atom(_)))
            .cloned()
            .collect();

        let mut deltas = Vec::with_capacity(atoms.len());
        for (delta_index, delta_atom) in &atoms {
            let mut bound: BTreeSet<String> = delta_atom.variables();
            if let Some(Term::Variable(v)) = &rule.context {
                bound.insert(v.clone());
            }
            let mut remaining_atoms: Vec<Atom> = atoms
                .iter()
                .filter(|(i, _)| i != delta_index)
                .map(|(_, a)| a.clone())
                .collect();
            let mut remaining_other = non_atoms.clone();
            let mut steps = Vec::new();
            let mut index_specs = Vec::new();

            while !remaining_atoms.is_empty() || !remaining_other.is_empty() {
                // 1. Emit any filter / assignment whose inputs are all bound.
                if let Some(pos) = remaining_other.iter().position(|lit| {
                    let mut used = BTreeSet::new();
                    match lit {
                        BodyLiteral::Filter(e) => e.variables(&mut used),
                        BodyLiteral::Assign { expr, .. } => expr.variables(&mut used),
                        BodyLiteral::Atom(_) => unreachable!(),
                    }
                    used.iter().all(|v| bound.contains(v))
                }) {
                    let lit = remaining_other.remove(pos);
                    match lit {
                        BodyLiteral::Filter(e) => steps.push(PlanStep::Filter(e)),
                        BodyLiteral::Assign { var, expr } => {
                            bound.insert(var.clone());
                            let slot = slots.get_or_insert(&var);
                            steps.push(PlanStep::Assign { var, slot, expr });
                        }
                        BodyLiteral::Atom(_) => unreachable!(),
                    }
                    continue;
                }
                // 2. Otherwise join the next atom, preferring one that shares
                //    variables with the bound set (avoiding cross products
                //    whenever the rule graph is connected).
                if remaining_atoms.is_empty() {
                    // Only filters/assignments left but none is ready: their
                    // variables can never become bound.
                    let lit = &remaining_other[0];
                    return Err(PlanError::Plan {
                        rule: rule.label.clone(),
                        message: format!("`{lit}` references variables never bound by the body"),
                    });
                }
                let pos = remaining_atoms
                    .iter()
                    .position(|a| a.variables().iter().any(|v| bound.contains(v)))
                    .unwrap_or(0);
                let atom = remaining_atoms.remove(pos);

                // Join-key inference: argument positions whose value is fully
                // determined before the join runs — constants, and variables
                // already in the bound set.  (A variable repeated *within*
                // the atom only counts once it is bound by an earlier step.)
                let key_columns: Vec<usize> = atom
                    .args
                    .iter()
                    .enumerate()
                    .filter(|(_, term)| match term {
                        Term::Constant(_) => true,
                        Term::Variable(v) => bound.contains(v),
                        Term::Wildcard | Term::Aggregate(..) => false,
                    })
                    .map(|(i, _)| i)
                    .collect();
                let args: Vec<SlotTerm> = atom
                    .args
                    .iter()
                    .map(|t| SlotTerm::compile(t, &mut slots))
                    .collect();
                let says = atom.says.as_ref().map(|t| SlotTerm::compile(t, &mut slots));
                bound.extend(atom.variables());
                let join = JoinStep {
                    pred: symbols.intern(&atom.predicate),
                    atom,
                    args,
                    says,
                    key_columns,
                };
                if let Some(spec) = join.index_spec() {
                    index_specs.push(spec);
                }
                steps.push(PlanStep::Join(join));
            }

            let delta_args: Vec<SlotTerm> = delta_atom
                .args
                .iter()
                .map(|t| SlotTerm::compile(t, &mut slots))
                .collect();
            let delta_says = delta_atom
                .says
                .as_ref()
                .map(|t| SlotTerm::compile(t, &mut slots));
            deltas.push(DeltaPlan {
                delta_index: *delta_index,
                delta: delta_atom.clone(),
                delta_pred: symbols.intern(&delta_atom.predicate),
                delta_args,
                delta_says,
                steps,
                index_specs,
            });
        }
        Ok(RulePlan {
            head_pred: symbols.intern(&rule.head.predicate),
            rule: rule.clone(),
            slots: Arc::new(slots),
            context_slot,
            deltas,
        })
    }
}

/// A fully prepared program: validated, localized, and planned.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// The localized program (rules are single-site).
    pub program: Program,
    /// One plan per localized rule, in rule order.
    pub plans: Vec<RulePlan>,
    /// Arity of every predicate mentioned by the localized program.
    pub arities: HashMap<String, usize>,
    /// Interned predicate names shared by every plan; the evaluator seeds
    /// its runtime interner (and every node store) from this table so all
    /// layers agree on the same dense [`PredId`] space.
    pub symbols: Symbols,
    /// Arity of every interned predicate, indexed by [`PredId`] (`None` for
    /// predicates the program never constrains).
    pub arity_by_pred: Vec<Option<usize>>,
}

impl CompiledProgram {
    /// All plans whose delta atom matches the interned predicate id — the
    /// evaluator's dispatch path (compares `u32`s, no string hashing).
    pub fn plans_for_pred(
        &self,
        pred: PredId,
    ) -> impl Iterator<Item = (&RulePlan, &DeltaPlan)> + '_ {
        self.plans.iter().flat_map(move |rp| {
            rp.deltas
                .iter()
                .filter(move |d| d.delta_pred == pred)
                .map(move |d| (rp, d))
        })
    }

    /// All plans whose delta atom matches `predicate` (name shim over
    /// [`CompiledProgram::plans_for_pred`]).
    pub fn plans_for_predicate<'a>(
        &'a self,
        predicate: &'a str,
    ) -> Box<dyn Iterator<Item = (&'a RulePlan, &'a DeltaPlan)> + 'a> {
        match self.symbols.resolve(predicate) {
            Some(pred) => Box::new(self.plans_for_pred(pred)),
            None => Box::new(std::iter::empty()),
        }
    }

    /// The deduplicated secondary-index specs required by every join of every
    /// plan, in deterministic order.  The store layer builds one index per
    /// spec and maintains it incrementally.
    pub fn index_specs(&self) -> Vec<IndexSpec> {
        let mut specs: BTreeSet<IndexSpec> = BTreeSet::new();
        for plan in &self.plans {
            for delta in &plan.deltas {
                specs.extend(delta.index_specs.iter().cloned());
            }
        }
        specs.into_iter().collect()
    }

    /// Declared arity of `predicate`, if the program mentions it.
    pub fn arity_of(&self, predicate: &str) -> Option<usize> {
        self.arities.get(predicate).copied()
    }

    /// Declared arity of an interned predicate (the hot-path arity check).
    pub fn arity_of_pred(&self, pred: PredId) -> Option<usize> {
        self.arity_by_pred.get(pred.index()).copied().flatten()
    }
}

/// Validates, localizes, and plans an NDlog / SeNDlog program.
pub fn compile_program(program: &Program) -> Result<CompiledProgram, PlanError> {
    validate_program(program).map_err(PlanError::Validation)?;
    let localized = localize_program(program)?;
    // The localized program must itself still be valid.
    validate_program(&localized).map_err(PlanError::Validation)?;
    let mut symbols = Symbols::new();
    let mut plans = Vec::with_capacity(localized.rules.len());
    for rule in &localized.rules {
        plans.push(RulePlan::for_rule_in(rule, &mut symbols)?);
    }
    let mut arities = HashMap::new();
    for rule in &localized.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body_atoms()) {
            symbols.intern(&atom.predicate);
            arities.insert(atom.predicate.clone(), atom.args.len());
        }
    }
    for fact in &localized.facts {
        symbols.intern(&fact.atom.predicate);
        arities.insert(fact.atom.predicate.clone(), fact.atom.args.len());
    }
    let mut arity_by_pred = vec![None; symbols.len()];
    for (pred, name) in symbols.iter() {
        arity_by_pred[pred.index()] = arities.get(name).copied();
    }
    Ok(CompiledProgram {
        program: localized,
        plans,
        arities,
        symbols,
        arity_by_pred,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const BEST_PATH: &str = "
        sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
        sp2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C := C1 + C2, P := f_concat(S,P2).
        sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C).
        sp4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
    ";

    #[test]
    fn compiles_the_reachability_program() {
        let program = parse_program(
            "r1 reachable(@S,D) :- link(@S,D).\n r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).",
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();
        // r1 + (r2 localized into 2 rules) = 3 rules.
        assert_eq!(compiled.plans.len(), 3);
        // Every body atom of every rule has a delta plan.
        for plan in &compiled.plans {
            assert_eq!(plan.deltas.len(), plan.rule.body_atoms().count());
        }
        // New link tuples trigger r1 and the forwarding rule.
        let link_triggered: Vec<_> = compiled.plans_for_predicate("link").collect();
        assert_eq!(link_triggered.len(), 2);
        // New link_at_z tuples trigger the localized join.
        assert_eq!(compiled.plans_for_predicate("link_at_z").count(), 1);
        // Arities are recorded for every predicate of the localized program.
        assert_eq!(compiled.arity_of("link"), Some(2));
        assert_eq!(compiled.arity_of("reachable"), Some(2));
        assert_eq!(compiled.arity_of("link_at_z"), Some(2));
        assert_eq!(compiled.arity_of("nonexistent"), None);
    }

    #[test]
    fn delta_plans_order_assignments_after_their_inputs() {
        let program = parse_program(BEST_PATH).unwrap();
        let compiled = compile_program(&program).unwrap();
        // Find the localized sp2 join rule (its body joins link_at_z with path).
        let sp2_plan = compiled
            .plans
            .iter()
            .find(|p| p.rule.label == "sp2")
            .expect("sp2 exists");
        for delta in &sp2_plan.deltas {
            let mut seen_join = delta.steps.is_empty();
            let mut c_assigned = false;
            for step in &delta.steps {
                match step {
                    PlanStep::Join(_) => seen_join = true,
                    PlanStep::Assign { var, .. } if var == "C" => {
                        // C := C1 + C2 needs both link (C1) and path (C2)
                        // tuples, so it must come after the remaining join.
                        assert!(seen_join, "assignment of C before join in {delta:?}");
                        c_assigned = true;
                    }
                    _ => {}
                }
            }
            assert!(c_assigned, "C is always assigned");
        }
    }

    #[test]
    fn aggregation_rule_plans_single_delta() {
        let program = parse_program(BEST_PATH).unwrap();
        let compiled = compile_program(&program).unwrap();
        let sp3 = compiled
            .plans
            .iter()
            .find(|p| p.rule.label == "sp3")
            .unwrap();
        assert_eq!(sp3.deltas.len(), 1);
        assert!(sp3.deltas[0].steps.is_empty());
        assert!(sp3.rule.head.has_aggregate());
    }

    #[test]
    fn sendlog_program_compiles_without_localization() {
        let program = parse_program(
            "At S:\n s1 reachable(S,D) :- link(S,D).\n s2 linkD(D,S)@D :- link(S,D).\n s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).",
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();
        assert_eq!(compiled.plans.len(), 3);
        assert!(compiled.program.uses_sendlog());
    }

    #[test]
    fn invalid_program_is_rejected_with_all_errors() {
        let program = parse_program("r1 p(@S,D) :- q(@S).\n r2 x(@S) :- y(@S), Z > 1.").unwrap();
        match compile_program(&program) {
            Err(PlanError::Validation(errs)) => assert!(errs.len() >= 2),
            other => panic!("expected validation failure, got {other:?}"),
        }
    }

    #[test]
    fn headless_body_is_rejected() {
        // A rule whose body is only a filter cannot be planned.
        let rule = Rule {
            label: "weird".into(),
            context: None,
            head: Atom::new("p", vec![Term::constant(1i64)]).at(0),
            body: vec![BodyLiteral::Filter(Expr::constant(true))],
        };
        let err = RulePlan::for_rule(&rule).unwrap_err();
        assert!(err.to_string().contains("no atoms"));
    }

    #[test]
    fn plan_display_is_readable() {
        let program = parse_program("r1 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).").unwrap();
        let compiled = compile_program(&program).unwrap();
        let rendered: Vec<String> = compiled.plans[1]
            .deltas
            .iter()
            .flat_map(|d| d.steps.iter().map(|s| s.to_string()))
            .collect();
        assert!(rendered.iter().any(|s| s.starts_with("join ")));
        // The localized transitive-closure joins have bound key columns, so
        // the rendered plan names the index they probe.
        assert!(rendered.iter().any(|s| s.contains("via index(")));
    }

    // ---- slot assignment --------------------------------------------------

    #[test]
    fn every_rule_variable_gets_a_dense_slot() {
        let program = parse_program(BEST_PATH).unwrap();
        let compiled = compile_program(&program).unwrap();
        for plan in &compiled.plans {
            let vars = plan.rule.bound_variables();
            for v in &vars {
                let slot = plan
                    .slots
                    .slot(v)
                    .unwrap_or_else(|| panic!("variable {v} of {} has no slot", plan.rule.label));
                assert_eq!(plan.slots.name(slot), Some(v.as_str()));
            }
            // Slots are dense: ids 0..len, one name each.
            let len = plan.slots.len();
            assert!(!plan.slots.is_empty());
            for s in 0..len {
                assert!(plan.slots.name(s).is_some());
            }
            assert_eq!(plan.slots.name(len), None);
        }
    }

    #[test]
    fn context_variable_is_slotted() {
        let program = parse_program("At S:\n s1 reachable(S,D) :- link(S,D).").unwrap();
        let compiled = compile_program(&program).unwrap();
        let plan = &compiled.plans[0];
        assert_eq!(plan.context_slot, plan.slots.slot("S"));
        assert!(plan.context_slot.is_some());
    }

    // ---- join-key inference -----------------------------------------------

    /// Collects the (predicate, key_columns) of every join of every delta
    /// plan of the rule labelled `label`.
    fn join_keys(compiled: &CompiledProgram, label: &str) -> Vec<(String, Vec<usize>)> {
        compiled
            .plans
            .iter()
            .filter(|p| p.rule.label == label)
            .flat_map(|p| p.deltas.iter())
            .flat_map(|d| d.steps.iter())
            .filter_map(|s| match s {
                PlanStep::Join(j) => Some((j.atom.predicate.clone(), j.key_columns.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn join_key_inference_table() {
        struct Case {
            name: &'static str,
            program: &'static str,
            rule: &'static str,
            expected: &'static [(&'static str, &'static [usize])],
        }
        let cases = [
            // The delta atom binds S and Z; the joined atom reuses Z in
            // position 0 (a bound prefix) while D is fresh.
            Case {
                name: "bound prefix",
                program: "r reachable(@S,D) :- link(@S,Z), reachable(@Z,D).",
                rule: "r",
                expected: &[("reachable", &[0]), ("link_at_z", &[1])],
            },
            // No shared value variables (SeNDlog context, so no location
            // columns): the join has no bound columns and must fall back to
            // a full scan (a cross product).
            Case {
                name: "unbound join falls back to scan",
                program: "At S:\n x p(X,Y) :- q(X), r(Y).",
                rule: "x",
                expected: &[("q", &[]), ("r", &[])],
            },
            // A constant argument is always part of the key.
            Case {
                name: "constant argument",
                program: "c alarm(@S,D) :- status(@S,D,5), link(@S,D).",
                rule: "c",
                expected: &[("link", &[0, 1]), ("status", &[0, 1, 2])],
            },
        ];
        for case in cases {
            let program = parse_program(case.program).unwrap();
            let compiled = compile_program(&program).unwrap();
            let mut got = join_keys(&compiled, case.rule);
            got.sort();
            let mut expected: Vec<(String, Vec<usize>)> = case
                .expected
                .iter()
                .map(|(p, cols)| (p.to_string(), cols.to_vec()))
                .collect();
            expected.sort();
            assert_eq!(got, expected, "case `{}`", case.name);
        }
    }

    #[test]
    fn says_qualified_atoms_still_infer_value_keys() {
        // s3 joins `W says reachable(S,Y)` after `Z says linkD(S,Z)`; the
        // delta on linkD binds S, so the reachable join keys on position 0.
        // The `says` principal is checked against the tuple origin and never
        // becomes a key column.
        let program = parse_program(
            "At S:\n s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).",
        )
        .unwrap();
        let compiled = compile_program(&program).unwrap();
        let keys = join_keys(&compiled, "s3");
        assert!(
            keys.contains(&("reachable".to_string(), vec![0])),
            "{keys:?}"
        );
        // Both joins carry a compiled `says` slot term.
        for plan in &compiled.plans {
            for delta in &plan.deltas {
                for step in &delta.steps {
                    if let PlanStep::Join(j) = step {
                        assert!(j.says.is_some(), "says-qualified join keeps its principal");
                        assert_eq!(j.args.len(), j.atom.args.len());
                    }
                }
            }
        }
    }

    #[test]
    fn index_specs_are_deduplicated_and_deterministic() {
        let program = parse_program(BEST_PATH).unwrap();
        let compiled = compile_program(&program).unwrap();
        let specs = compiled.index_specs();
        // Deduplicated...
        let as_set: BTreeSet<&IndexSpec> = specs.iter().collect();
        assert_eq!(as_set.len(), specs.len());
        // ...sorted...
        let mut sorted = specs.clone();
        sorted.sort();
        assert_eq!(specs, sorted);
        // ...and present for the bound joins of sp4 (bestPathCost ⋈ path).
        assert!(specs.iter().any(|s| s.predicate == "path"), "{specs:?}");
        // Every spec's columns are within the predicate's arity.
        for spec in &specs {
            let arity = compiled.arity_of(&spec.predicate).unwrap();
            assert!(spec.key_columns.iter().all(|c| *c < arity));
            assert!(!spec.key_columns.is_empty());
        }
    }

    #[test]
    fn wildcards_never_join_the_key() {
        let program = parse_program("w p(@S) :- q(@S,_), r(@S,_,3).").unwrap();
        let compiled = compile_program(&program).unwrap();
        for (pred, cols) in join_keys(&compiled, "w") {
            match pred.as_str() {
                // r(@S,_,3): S bound, wildcard skipped, constant 3 included.
                "r" => assert_eq!(cols, vec![0, 2]),
                // q(@S,_): only the location variable is bound.
                "q" => assert_eq!(cols, vec![0]),
                other => panic!("unexpected join {other}"),
            }
        }
    }
}
