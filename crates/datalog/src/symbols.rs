//! Predicate interning: dense integer ids for predicate names.
//!
//! Every predicate a compiled program mentions is interned into a
//! [`Symbols`] table at plan time, yielding a dense [`PredId`].  The
//! evaluator's hot path (plan dispatch, store addressing, index probes)
//! then compares and hashes `u32`s instead of `String`s; the interner keeps
//! each name exactly once as an `Arc<str>` shared by every consumer, and
//! name-based APIs resolve through it once at the boundary.
//!
//! The table is append-only, so interning the same sequence of names always
//! yields the same ids — the runtime exploits this to mirror the engine's
//! table into every node store ([`Symbols::len`] acts as the sync cursor).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense predicate identifier assigned by a [`Symbols`] interner.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredId(pub u32);

impl PredId {
    /// The id as a `usize` table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An append-only predicate-name interner.
#[derive(Clone, Debug, Default)]
pub struct Symbols {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, PredId>,
}

impl Symbols {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `name`, allocating the next dense id on first
    /// sight.
    pub fn intern(&mut self, name: &str) -> PredId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = PredId(self.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(shared.clone());
        self.index.insert(shared, id);
        id
    }

    /// The id of `name`, if already interned.
    pub fn resolve(&self, name: &str) -> Option<PredId> {
        self.index.get(name).copied()
    }

    /// The name behind an id.
    pub fn name(&self, id: PredId) -> Option<&str> {
        self.names.get(id.index()).map(|s| &**s)
    }

    /// The shared `Arc<str>` behind an id (cheap to clone into tuples and
    /// diagnostics).
    pub fn name_arc(&self, id: PredId) -> Option<&Arc<str>> {
        self.names.get(id.index())
    }

    /// Number of interned predicates (also the next id to be assigned).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PredId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (PredId(i as u32), &**n))
    }

    /// Appends every entry of `other` this table does not know yet, in
    /// `other`'s id order.  When `self` was seeded from a prefix of `other`
    /// (the engine/store mirroring protocol) the two tables end up assigning
    /// identical ids to identical names.
    ///
    /// Mirroring is only sound if `self` really is a prefix of `other`: a
    /// mirror that interned its own names first would silently map the same
    /// id to different predicates on each side.  Debug builds verify the
    /// shared prefix (the whole test suite runs under this check); release
    /// builds keep the O(1)-when-in-sync fast path.
    pub fn sync_from(&mut self, other: &Symbols) {
        debug_assert!(
            self.names
                .iter()
                .zip(other.names.iter())
                .all(|(a, b)| a == b),
            "sync_from requires the mirror to be a prefix of the authority"
        );
        for i in self.names.len()..other.names.len() {
            self.intern(&other.names[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut syms = Symbols::new();
        assert!(syms.is_empty());
        let link = syms.intern("link");
        let reach = syms.intern("reachable");
        assert_eq!(link, PredId(0));
        assert_eq!(reach, PredId(1));
        assert_eq!(syms.intern("link"), link, "re-interning returns the id");
        assert_eq!(syms.len(), 2);
        assert_eq!(syms.resolve("link"), Some(link));
        assert_eq!(syms.resolve("nope"), None);
        assert_eq!(syms.name(reach), Some("reachable"));
        assert_eq!(syms.name(PredId(9)), None);
        assert_eq!(link.index(), 0);
        assert_eq!(link.to_string(), "#0");
    }

    #[test]
    fn sync_from_mirrors_id_assignment() {
        let mut authority = Symbols::new();
        authority.intern("link");
        authority.intern("reachable");
        let mut mirror = Symbols::new();
        mirror.sync_from(&authority);
        authority.intern("sensor");
        mirror.sync_from(&authority);
        for (id, name) in authority.iter() {
            assert_eq!(mirror.resolve(name), Some(id));
            assert_eq!(mirror.name(id), Some(name));
        }
        // Syncing is idempotent.
        mirror.sync_from(&authority);
        assert_eq!(mirror.len(), authority.len());
    }
}
