//! Static validation of NDlog / SeNDlog programs.
//!
//! Checks performed before a program is handed to the localizer and planner:
//!
//! * **Safety (range restriction)** — every variable in a rule head must be
//!   bound by a positive body atom or an assignment.
//! * **Location specifiers** — NDlog rules must carry a location specifier on
//!   the head and on every body atom (SeNDlog rules instead execute inside a
//!   principal's context, so specifiers are optional there).
//! * **Aggregates** — at most one aggregate per head, and the aggregated
//!   variable must be bound by the body.
//! * **Assignments / filters** — all variables they reference must be bound
//!   by body atoms or earlier assignments.
//! * **Predicate arity** — every occurrence of a predicate (rule heads, body
//!   atoms, facts) must use the same number of arguments.  Without this
//!   check an arity conflict would only surface at runtime, where the
//!   evaluator would silently skip the mismatching stored tuples during
//!   joins and quietly drop derivations.

use crate::ast::{Atom, BodyLiteral, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A validation failure, tied to the offending rule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValidationError {
    /// Label of the rule that failed validation (or `<fact>`).
    pub rule: String,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for ValidationError {}

/// Validates every rule and fact of `program`, returning all errors found.
pub fn validate_program(program: &Program) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    for rule in &program.rules {
        validate_rule(rule, &mut errors);
    }
    for fact in &program.facts {
        if !fact.atom.is_ground() {
            errors.push(ValidationError {
                rule: "<fact>".into(),
                message: format!("fact `{}` is not ground", fact.atom),
            });
        }
    }
    validate_arities(program, &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Checks that every predicate is used with a single arity across the whole
/// program.  The first occurrence (in source order) fixes the arity; every
/// conflicting later occurrence is reported against its own rule.
fn validate_arities(program: &Program, errors: &mut Vec<ValidationError>) {
    let mut declared: BTreeMap<String, (usize, String)> = BTreeMap::new();
    let mut check = |atom: &Atom, rule_label: &str, errors: &mut Vec<ValidationError>| {
        let arity = atom.args.len();
        match declared.get(atom.predicate.as_str()) {
            None => {
                declared.insert(atom.predicate.clone(), (arity, rule_label.to_string()));
            }
            Some((expected, first)) if *expected != arity => {
                errors.push(ValidationError {
                    rule: rule_label.to_string(),
                    message: format!(
                        "predicate `{}` used with arity {arity}, but rule {first} uses arity {expected}",
                        atom.predicate
                    ),
                });
            }
            Some(_) => {}
        }
    };
    for rule in &program.rules {
        check(&rule.head, &rule.label, errors);
        for atom in rule.body_atoms() {
            check(atom, &rule.label, errors);
        }
    }
    for fact in &program.facts {
        check(&fact.atom, "<fact>", errors);
    }
}

fn validate_rule(rule: &Rule, errors: &mut Vec<ValidationError>) {
    let err = |message: String| ValidationError {
        rule: rule.label.clone(),
        message,
    };

    let is_sendlog = rule.context.is_some();
    let bound = rule.bound_variables();

    // Safety: head variables must be bound.
    for arg in &rule.head.args {
        match arg {
            Term::Variable(v) | Term::Aggregate(_, v) => {
                if !bound.contains(v) {
                    errors.push(err(format!(
                        "head variable `{v}` is not bound by the rule body (unsafe rule)"
                    )));
                }
            }
            Term::Wildcard => {
                errors.push(err("wildcard `_` is not allowed in a rule head".into()));
            }
            Term::Constant(_) => {}
        }
    }
    if let Some(Term::Variable(v)) = &rule.head.export_to {
        if !bound.contains(v) {
            errors.push(err(format!(
                "export annotation variable `@{v}` is not bound by the rule body"
            )));
        }
    }

    // Aggregates: at most one, only in heads (the parser enforces placement).
    let agg_count = rule
        .head
        .args
        .iter()
        .filter(|t| matches!(t, Term::Aggregate(..)))
        .count();
    if agg_count > 1 {
        errors.push(err("at most one aggregate is allowed per rule head".into()));
    }

    // Location specifiers.
    if !is_sendlog {
        if rule.head.location.is_none() && rule.head.export_to.is_none() {
            errors.push(err(format!(
                "NDlog head `{}` has no location specifier",
                rule.head
            )));
        }
        for atom in rule.body_atoms() {
            if atom.location.is_none() {
                errors.push(err(format!(
                    "NDlog body atom `{atom}` has no location specifier"
                )));
            }
        }
    }
    // Location specifier terms must be variables or constants, not wildcards.
    for atom in std::iter::once(&rule.head).chain(rule.body_atoms()) {
        if let Some(Term::Wildcard) = atom.location_term() {
            errors.push(err(format!(
                "atom `{atom}` uses a wildcard as its location specifier"
            )));
        }
    }

    // Filters and assignments: variables must be bound by atoms or earlier
    // assignments (assignments may be written in any order relative to the
    // atoms, as in the paper's Best-Path listing, so we only require that a
    // binding exists somewhere in the rule).
    let mut assignable: BTreeSet<String> = BTreeSet::new();
    for lit in &rule.body {
        if let BodyLiteral::Assign { var, .. } = lit {
            assignable.insert(var.clone());
        }
    }
    let atom_bound: BTreeSet<String> = {
        let mut s = BTreeSet::new();
        for atom in rule.body_atoms() {
            s.extend(atom.variables());
        }
        if let Some(Term::Variable(v)) = &rule.context {
            s.insert(v.clone());
        }
        s
    };
    for lit in &rule.body {
        let mut used = BTreeSet::new();
        match lit {
            BodyLiteral::Filter(e) => e.variables(&mut used),
            BodyLiteral::Assign { expr, .. } => expr.variables(&mut used),
            BodyLiteral::Atom(_) => continue,
        }
        for v in used {
            if !atom_bound.contains(&v) && !assignable.contains(&v) {
                errors.push(err(format!(
                    "variable `{v}` used in `{lit}` is not bound by any body atom"
                )));
            }
        }
    }

    // `says` annotations only make sense for SeNDlog rules.
    if !is_sendlog {
        for atom in rule.body_atoms() {
            if atom.says.is_some() {
                errors.push(err(format!(
                    "`says` annotation on `{atom}` requires a SeNDlog context block (`At P:`)"
                )));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn validate(src: &str) -> Result<(), Vec<ValidationError>> {
        validate_program(&parse_program(src).unwrap())
    }

    #[test]
    fn accepts_the_paper_programs() {
        assert!(validate(
            "r1 reachable(@S,D) :- link(@S,D).\n r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).\n link(a,b)."
        )
        .is_ok());

        assert!(validate(
            "At S:\n s1 reachable(S,D) :- link(S,D).\n s2 linkD(D,S)@D :- link(S,D).\n s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y)."
        )
        .is_ok());

        assert!(validate(
            "sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).\n sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C)."
        )
        .is_ok());
    }

    #[test]
    fn rejects_unsafe_head_variables() {
        let errs = validate("r1 reachable(@S,D) :- link(@S,Z).").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("`D`")));
    }

    #[test]
    fn rejects_missing_location_specifiers_in_ndlog() {
        let errs = validate("r1 reachable(S,D) :- link(S,D).").unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("no location specifier")));
    }

    #[test]
    fn allows_missing_location_specifiers_in_sendlog() {
        assert!(validate("At S:\n s1 reachable(S,D) :- link(S,D).").is_ok());
    }

    #[test]
    fn rejects_says_outside_sendlog_context() {
        let errs = validate("r1 p(@S,D) :- W says link(@S,D).").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("says")));
    }

    #[test]
    fn rejects_unbound_filter_variables() {
        let errs = validate("r1 p(@S) :- q(@S), N > 3.").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("`N`")));
    }

    #[test]
    fn rejects_wildcard_in_head() {
        let errs = validate("r1 p(@S,_) :- q(@S,X).").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("wildcard")));
    }

    #[test]
    fn rejects_unbound_export_annotation() {
        let errs = validate("At S:\n s1 p(S,D)@Z :- q(S,D).").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("@Z")));
    }

    #[test]
    fn rejects_multiple_aggregates() {
        let errs = validate("r1 p(@S, a_MIN<C>, a_MAX<C>) :- q(@S, C).").unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("one aggregate")));
    }

    #[test]
    fn rejects_predicate_arity_conflicts() {
        // `link` is used with arity 2 by r1 and arity 3 by r2: the conflict
        // is reported against r2 (the later occurrence) and names r1.
        let errs =
            validate("r1 reachable(@S,D) :- link(@S,D).\n r2 reachable(@S,D) :- link(@S,D,C).")
                .unwrap_err();
        assert!(
            errs.iter().any(|e| e.rule == "r2"
                && e.message.contains("`link`")
                && e.message.contains("arity 3")
                && e.message.contains("rule r1 uses arity 2")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_fact_arity_conflicts_with_rules() {
        let errs = validate("r1 reachable(@S,D) :- link(@S,D).\n link(a,b,c).").unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.rule == "<fact>" && e.message.contains("`link`")),
            "{errs:?}"
        );
    }

    #[test]
    fn head_and_body_arity_conflicts_are_caught() {
        let errs = validate("r1 p(@S,D,X) :- q(@S,D), X := 1.\n r2 s(@A) :- p(@A,B).").unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.rule == "r2" && e.message.contains("`p`")),
            "{errs:?}"
        );
    }

    #[test]
    fn error_display_mentions_rule_label() {
        let errs = validate("bad p(@S,D) :- q(@S).").unwrap_err();
        assert!(errs[0].to_string().starts_with("rule bad:"));
    }
}
