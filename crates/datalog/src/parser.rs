//! Recursive-descent parser for NDlog / SeNDlog programs.
//!
//! The parser accepts the syntax used throughout the paper:
//!
//! ```text
//! r1 reachable(@S,D) :- link(@S,D).
//! r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
//!
//! At S:
//! s2 linkD(D,S)@D :- link(S,D).
//! s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
//! ```
//!
//! plus arithmetic, assignments (`C := C1 + C2`), comparisons, built-in
//! function calls (`f_concat(S,P)`), aggregates in rule heads (`a_MIN<C>`)
//! and ground facts (`link(a,b,1).`).

use crate::ast::{AggFunc, Atom, BinOp, BodyLiteral, Expr, Fact, Program, Rule, Term};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use crate::value::Value;
use std::fmt;

/// A parse error with source position.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Explanation of the failure.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a complete NDlog / SeNDlog program.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse_program()
}

/// Parses a single rule (without a trailing context block).  Convenient in
/// tests and for building programs programmatically from rule strings.
pub fn parse_rule(source: &str) -> Result<Rule, ParseError> {
    let program = parse_program(source)?;
    program.rules.into_iter().next().ok_or_else(|| ParseError {
        message: "expected a rule".into(),
        line: 1,
        col: 1,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    auto_label: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            auto_label: 0,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let idx = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn here(&self) -> (usize, usize) {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        (t.line, t.col)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn expect(&mut self, expected: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {expected}, found {}", self.peek())))
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::default();
        let mut current_context: Option<Term> = None;
        while *self.peek() != TokenKind::Eof {
            if self.at_context_header() {
                current_context = Some(self.parse_context_header()?);
                continue;
            }
            self.parse_statement(&mut program, current_context.clone())?;
        }
        Ok(program)
    }

    /// `At S:` — `At` lexes as a variable, `at` as an identifier.
    fn at_context_header(&self) -> bool {
        match self.peek() {
            TokenKind::Variable(v) if v == "At" => true,
            TokenKind::Ident(v) if v == "at" => {
                // Disambiguate from a predicate named `at`: a header is
                // followed by a term and then a colon.
                matches!(self.peek_at(2), TokenKind::Colon)
            }
            _ => false,
        }
    }

    fn parse_context_header(&mut self) -> Result<Term, ParseError> {
        self.advance(); // At
        let term = self.parse_term()?;
        self.expect(&TokenKind::Colon)?;
        Ok(term)
    }

    fn parse_statement(
        &mut self,
        program: &mut Program,
        context: Option<Term>,
    ) -> Result<(), ParseError> {
        // Optional label: an identifier immediately followed by another
        // identifier (the head predicate) or a variable (a `says` principal).
        let label = match (self.peek(), self.peek_at(1)) {
            (TokenKind::Ident(l), TokenKind::Ident(_)) => {
                let label = l.clone();
                self.advance();
                Some(label)
            }
            _ => None,
        };

        let head = self.parse_atom(true)?;

        match self.peek() {
            TokenKind::Period => {
                self.advance();
                if label.is_some() {
                    return Err(self.error("facts cannot carry a rule label"));
                }
                if !head.is_ground() {
                    return Err(self.error(format!(
                        "fact `{head}` contains variables; facts must be ground"
                    )));
                }
                program.facts.push(Fact { atom: head });
                Ok(())
            }
            TokenKind::ColonDash => {
                self.advance();
                let body = self.parse_body()?;
                self.expect(&TokenKind::Period)?;
                let label = label.unwrap_or_else(|| {
                    self.auto_label += 1;
                    format!("rule{}", self.auto_label)
                });
                program.rules.push(Rule {
                    label,
                    context,
                    head,
                    body,
                });
                Ok(())
            }
            other => Err(self.error(format!("expected `.` or `:-`, found {other}"))),
        }
    }

    fn parse_body(&mut self) -> Result<Vec<BodyLiteral>, ParseError> {
        let mut literals = vec![self.parse_body_literal()?];
        while *self.peek() == TokenKind::Comma {
            self.advance();
            literals.push(self.parse_body_literal()?);
        }
        Ok(literals)
    }

    fn parse_body_literal(&mut self) -> Result<BodyLiteral, ParseError> {
        // Assignment: `X := expr`
        if let (TokenKind::Variable(v), TokenKind::ColonEq) = (self.peek(), self.peek_at(1)) {
            let var = v.clone();
            self.advance();
            self.advance();
            let expr = self.parse_expr()?;
            return Ok(BodyLiteral::Assign { var, expr });
        }
        // Atom: `pred(...)` possibly prefixed with `P says`.  Identifiers
        // starting with `f_` are NDlog built-in functions, so a leading
        // `f_member(...)` is a filter expression rather than a predicate.
        let is_atom = match (self.peek(), self.peek_at(1)) {
            (TokenKind::Ident(name), TokenKind::LParen) => !name.starts_with("f_"),
            (TokenKind::Ident(_) | TokenKind::Variable(_), TokenKind::Ident(kw))
                if kw == "says" =>
            {
                true
            }
            _ => false,
        };
        if is_atom {
            let atom = self.parse_atom(false)?;
            return Ok(BodyLiteral::Atom(atom));
        }
        // Otherwise a filter expression.
        let expr = self.parse_expr()?;
        Ok(BodyLiteral::Filter(expr))
    }

    fn parse_atom(&mut self, is_head: bool) -> Result<Atom, ParseError> {
        // Optional `P says` prefix.
        let says = match (self.peek(), self.peek_at(1)) {
            (TokenKind::Variable(v), TokenKind::Ident(kw)) if kw == "says" => {
                let t = Term::var(v.clone());
                self.advance();
                self.advance();
                Some(t)
            }
            (TokenKind::Ident(c), TokenKind::Ident(kw)) if kw == "says" => {
                let t = Term::Constant(ident_constant(c));
                self.advance();
                self.advance();
                Some(t)
            }
            _ => None,
        };

        let predicate = match self.advance() {
            TokenKind::Ident(name) => name,
            other => return Err(self.error(format!("expected predicate name, found {other}"))),
        };
        self.expect(&TokenKind::LParen)?;

        let mut args = Vec::new();
        let mut location = None;
        if *self.peek() != TokenKind::RParen {
            loop {
                let mut is_location = false;
                if *self.peek() == TokenKind::At {
                    self.advance();
                    is_location = true;
                }
                let term = self.parse_atom_arg(is_head)?;
                if is_location {
                    if location.is_some() {
                        return Err(self.error("multiple location specifiers in one atom"));
                    }
                    location = Some(args.len());
                }
                args.push(term);
                if *self.peek() == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;

        // SeNDlog export annotation `@Z` after a head atom.
        let mut export_to = None;
        if is_head && *self.peek() == TokenKind::At {
            self.advance();
            export_to = Some(self.parse_term()?);
        }

        let mut atom = Atom::new(predicate, args);
        atom.location = location;
        atom.export_to = export_to;
        atom.says = says;
        Ok(atom)
    }

    fn parse_atom_arg(&mut self, is_head: bool) -> Result<Term, ParseError> {
        // Aggregate: a_MIN<C>
        if let TokenKind::Ident(name) = self.peek() {
            let func = match name.to_ascii_uppercase().as_str() {
                "A_MIN" => Some(AggFunc::Min),
                "A_MAX" => Some(AggFunc::Max),
                "A_COUNT" => Some(AggFunc::Count),
                "A_SUM" => Some(AggFunc::Sum),
                _ => None,
            };
            if let Some(func) = func {
                if *self.peek_at(1) == TokenKind::Lt {
                    if !is_head {
                        return Err(self.error("aggregates are only allowed in rule heads"));
                    }
                    self.advance(); // a_MIN
                    self.advance(); // <
                    let var = match self.advance() {
                        TokenKind::Variable(v) => v,
                        other => {
                            return Err(
                                self.error(format!("expected aggregate variable, found {other}"))
                            )
                        }
                    };
                    self.expect(&TokenKind::Gt)?;
                    return Ok(Term::Aggregate(func, var));
                }
            }
        }
        self.parse_term()
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek().clone() {
            TokenKind::Variable(v) => {
                self.advance();
                Ok(Term::Variable(v))
            }
            TokenKind::Underscore => {
                self.advance();
                Ok(Term::Wildcard)
            }
            _ => {
                let value = self.parse_constant()?;
                Ok(Term::Constant(value))
            }
        }
    }

    fn parse_constant(&mut self) -> Result<Value, ParseError> {
        match self.advance() {
            TokenKind::Number(n) => Ok(Value::Int(n)),
            TokenKind::Minus => match self.advance() {
                TokenKind::Number(n) => Ok(Value::Int(-n)),
                other => Err(self.error(format!("expected number after `-`, found {other}"))),
            },
            TokenKind::StringLit(s) => Ok(Value::Str(s)),
            TokenKind::Ident(name) => Ok(ident_constant(&name)),
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if *self.peek() != TokenKind::RBracket {
                    loop {
                        items.push(self.parse_constant()?);
                        if *self.peek() == TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Value::List(items))
            }
            other => Err(self.error(format!("expected constant, found {other}"))),
        }
    }

    // ---- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while *self.peek() == TokenKind::OrOr {
            self.advance();
            let rhs = self.parse_and()?;
            lhs = Expr::BinOp(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while *self.peek() == TokenKind::AndAnd {
            self.advance();
            let rhs = self.parse_cmp()?;
            lhs = Expr::BinOp(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.parse_add()?;
            Ok(Expr::BinOp(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_mul()?;
            lhs = Expr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.parse_primary()?;
            lhs = Expr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Variable(v) => {
                self.advance();
                Ok(Expr::var(v))
            }
            TokenKind::Ident(name) => {
                // Function call or identifier constant.
                if *self.peek_at(1) == TokenKind::LParen {
                    self.advance();
                    self.advance();
                    let mut args = Vec::new();
                    if *self.peek() != TokenKind::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if *self.peek() == TokenKind::Comma {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    self.advance();
                    Ok(Expr::Term(Term::Constant(ident_constant(&name))))
                }
            }
            TokenKind::LBracket => {
                // A list expression: [e1, e2, ...] becomes f_list(e1, e2, ...).
                self.advance();
                let mut items = Vec::new();
                if *self.peek() != TokenKind::RBracket {
                    loop {
                        items.push(self.parse_expr()?);
                        if *self.peek() == TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::Call("f_list".into(), items))
            }
            TokenKind::Number(_) | TokenKind::Minus | TokenKind::StringLit(_) => {
                let v = self.parse_constant()?;
                Ok(Expr::constant(v))
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Interprets a lower-case identifier used as a constant: `true`/`false` are
/// booleans, everything else is a string symbol (node names like `a`, `b`).
fn ident_constant(name: &str) -> Value {
    match name {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        _ => Value::Str(name.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REACHABLE: &str = "
        r1 reachable(@S,D) :- link(@S,D).
        r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
        link(a,b).
        link(a,c).
        link(b,c).
    ";

    const SENDLOG_REACHABLE: &str = "
        At S:
        s1 reachable(S,D) :- link(S,D).
        s2 linkD(D,S)@D :- link(S,D).
        s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
    ";

    const BEST_PATH: &str = "
        sp1 path(@S,D,P,C) :- link(@S,D,C), P := f_init(S,D).
        sp2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C := C1 + C2, P := f_concat(S,P2).
        sp3 bestPathCost(@S,D,a_MIN<C>) :- path(@S,D,P,C).
        sp4 bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
    ";

    #[test]
    fn parses_the_reachability_program() {
        let program = parse_program(REACHABLE).unwrap();
        assert_eq!(program.rules.len(), 2);
        assert_eq!(program.facts.len(), 3);
        assert_eq!(program.rules[0].label, "r1");
        assert_eq!(program.rules[1].body.len(), 2);
        assert_eq!(program.rules[0].head.location, Some(0));
        assert!(!program.uses_sendlog());
        // The pretty-printed rule round-trips through the parser.
        let printed = program.rules[1].to_string();
        let reparsed = parse_rule(&printed).unwrap();
        assert_eq!(reparsed.head, program.rules[1].head);
    }

    #[test]
    fn parses_the_sendlog_program_with_contexts() {
        let program = parse_program(SENDLOG_REACHABLE).unwrap();
        assert_eq!(program.rules.len(), 3);
        assert!(program.uses_sendlog());
        for rule in &program.rules {
            assert_eq!(rule.context, Some(Term::var("S")));
        }
        let s2 = &program.rules[1];
        assert_eq!(s2.head.export_to, Some(Term::var("D")));
        let s3 = &program.rules[2];
        let atoms: Vec<&Atom> = s3.body_atoms().collect();
        assert_eq!(atoms[0].says, Some(Term::var("Z")));
        assert_eq!(atoms[1].says, Some(Term::var("W")));
        assert_eq!(s3.head.export_to, Some(Term::var("Z")));
    }

    #[test]
    fn parses_best_path_with_aggregates_and_assignments() {
        let program = parse_program(BEST_PATH).unwrap();
        assert_eq!(program.rules.len(), 4);
        let sp2 = &program.rules[1];
        let assigns: Vec<_> = sp2
            .body
            .iter()
            .filter(|l| matches!(l, BodyLiteral::Assign { .. }))
            .collect();
        assert_eq!(assigns.len(), 2);
        let sp3 = &program.rules[2];
        assert!(sp3.head.has_aggregate());
        assert_eq!(sp3.head.args[2], Term::Aggregate(AggFunc::Min, "C".into()));
    }

    #[test]
    fn parses_filters_and_arithmetic_precedence() {
        let rule = parse_rule("r alarm(@S,N) :- change(@S,N), N > 3 + 2 * 4.").unwrap();
        let filter = rule
            .body
            .iter()
            .find_map(|l| match l {
                BodyLiteral::Filter(e) => Some(e.clone()),
                _ => None,
            })
            .unwrap();
        // N > (3 + (2*4))
        assert_eq!(filter.to_string(), "(N > (3 + (2 * 4)))");
    }

    #[test]
    fn parses_facts_with_varied_constants() {
        let program =
            parse_program("cost(a, b, 5).\nflag(c, true).\nname(d, \"edge\").\npathv(a, [a,b,c]).")
                .unwrap();
        assert_eq!(program.facts.len(), 4);
        assert_eq!(program.facts[0].atom.args[2], Term::Constant(Value::Int(5)));
        assert_eq!(
            program.facts[1].atom.args[1],
            Term::Constant(Value::Bool(true))
        );
        assert_eq!(
            program.facts[2].atom.args[1],
            Term::Constant(Value::Str("edge".into()))
        );
        assert_eq!(
            program.facts[3].atom.args[1],
            Term::Constant(Value::List(vec![
                Value::Str("a".into()),
                Value::Str("b".into()),
                Value::Str("c".into())
            ]))
        );
    }

    #[test]
    fn rejects_non_ground_facts() {
        let err = parse_program("link(a, X).").unwrap_err();
        assert!(err.message.contains("ground"), "{}", err.message);
    }

    #[test]
    fn rejects_labelled_facts() {
        let err = parse_program("f1 link(a, b).").unwrap_err();
        assert!(err.message.contains("label"), "{}", err.message);
    }

    #[test]
    fn rejects_aggregates_in_bodies() {
        let err = parse_program("r p(@S, C) :- q(@S, a_MIN<C>).").unwrap_err();
        assert!(err.message.contains("rule heads"), "{}", err.message);
    }

    #[test]
    fn rejects_duplicate_location_specifiers() {
        let err = parse_program("r p(@S, @D) :- q(@S, D).").unwrap_err();
        assert!(err.message.contains("multiple location"), "{}", err.message);
    }

    #[test]
    fn reports_positions_in_errors() {
        let err =
            parse_program("r1 reachable(@S,D) :- link(@S,D)\nr2 p(@S) :- q(@S).").unwrap_err();
        // Missing period after the first rule is detected at the second line.
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("parse error"));
    }

    #[test]
    fn auto_labels_unlabelled_rules() {
        let program = parse_program("reachable(@S,D) :- link(@S,D).").unwrap();
        assert_eq!(program.rules[0].label, "rule1");
    }

    #[test]
    fn parses_wildcards_and_negative_numbers() {
        let rule = parse_rule("r t(@S,C) :- m(@S, _, C), C != -1.").unwrap();
        let atom = rule.body_atoms().next().unwrap();
        assert_eq!(atom.args[1], Term::Wildcard);
        let filter = rule
            .body
            .iter()
            .find_map(|l| match l {
                BodyLiteral::Filter(e) => Some(e.to_string()),
                _ => None,
            })
            .unwrap();
        assert_eq!(filter, "(C != -1)");
    }

    #[test]
    fn parses_says_with_constant_principal() {
        let rule = parse_rule("r accept(@S,X) :- b says update(S,X).").unwrap();
        let atom = rule.body_atoms().next().unwrap();
        assert_eq!(atom.says, Some(Term::Constant(Value::Str("b".into()))));
    }

    #[test]
    fn parses_list_expressions_in_assignments() {
        let rule = parse_rule("r p(@S,P) :- q(@S), P := [1, 2, 3].").unwrap();
        let assign = rule
            .body
            .iter()
            .find_map(|l| match l {
                BodyLiteral::Assign { expr, .. } => Some(expr.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(
            assign,
            Expr::Call(
                "f_list".into(),
                vec![
                    Expr::constant(Value::Int(1)),
                    Expr::constant(Value::Int(2)),
                    Expr::constant(Value::Int(3)),
                ]
            )
        );
    }
}
