//! Tokeniser for the NDlog / SeNDlog surface syntax.

use std::fmt;

/// A token with its source position (for error reporting).
#[derive(Clone, PartialEq, Debug)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

/// Token kinds produced by the lexer.
#[derive(Clone, PartialEq, Debug)]
pub enum TokenKind {
    /// A lower-case-initial identifier: predicate names, function names,
    /// constants like `a`, and the keyword `says`.
    Ident(String),
    /// An upper-case-initial identifier: variables, and the context keyword
    /// `At` (disambiguated by the parser).
    Variable(String),
    /// An integer literal.
    Number(i64),
    /// A double-quoted string literal.
    StringLit(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `@`
    At,
    /// `:`
    Colon,
    /// `:-`
    ColonDash,
    /// `:=`
    ColonEq,
    /// `_`
    Underscore,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==` (also accepted: a single `=` in filter position)
    EqEq,
    /// `!=`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Variable(s) => write!(f, "variable `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::StringLit(s) => write!(f, "string \"{s}\""),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Period => write!(f, "`.`"),
            TokenKind::At => write!(f, "`@`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::ColonDash => write!(f, "`:-`"),
            TokenKind::ColonEq => write!(f, "`:=`"),
            TokenKind::Underscore => write!(f, "`_`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error with position information.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Explanation of the failure.
    pub message: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenises NDlog / SeNDlog source text.
pub fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let err = |msg: String, line: usize, col: usize| LexError {
        message: msg,
        line,
        col,
    };

    while i < chars.len() {
        let c = chars[i];
        let tok_line = line;
        let tok_col = col;
        let advance = |i: &mut usize, col: &mut usize, n: usize| {
            *i += n;
            *col += n;
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                advance(&mut i, &mut col, 1);
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '.' => {
                tokens.push(Token {
                    kind: TokenKind::Period,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '@' => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '&' if chars.get(i + 1) == Some(&'&') => {
                tokens.push(Token {
                    kind: TokenKind::AndAnd,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 2);
            }
            '|' if chars.get(i + 1) == Some(&'|') => {
                tokens.push(Token {
                    kind: TokenKind::OrOr,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 2);
            }
            ':' => {
                if chars.get(i + 1) == Some(&'-') {
                    tokens.push(Token {
                        kind: TokenKind::ColonDash,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 2);
                } else if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::ColonEq,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 2);
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Colon,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 1);
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 2);
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 1);
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 2);
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 1);
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 2);
                } else {
                    // Accept a lone `=` as equality (common in NDlog listings).
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        line: tok_line,
                        col: tok_col,
                    });
                    advance(&mut i, &mut col, 1);
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 2);
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            '"' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match chars.get(j) {
                        None | Some('\n') => {
                            return Err(err(
                                "unterminated string literal".into(),
                                tok_line,
                                tok_col,
                            ))
                        }
                        Some('"') => break,
                        Some(&ch) => {
                            s.push(ch);
                            j += 1;
                        }
                    }
                }
                let consumed = j + 1 - i;
                tokens.push(Token {
                    kind: TokenKind::StringLit(s),
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, consumed);
            }
            '_' if chars
                .get(i + 1)
                .is_none_or(|c| !c.is_alphanumeric() && *c != '_') =>
            {
                tokens.push(Token {
                    kind: TokenKind::Underscore,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, 1);
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let n: i64 = text.parse().map_err(|_| {
                    err(
                        format!("integer literal `{text}` out of range"),
                        tok_line,
                        tok_col,
                    )
                })?;
                let consumed = j - i;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, consumed);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                let kind = if c.is_uppercase() {
                    TokenKind::Variable(text)
                } else {
                    TokenKind::Ident(text)
                };
                let consumed = j - i;
                tokens.push(Token {
                    kind,
                    line: tok_line,
                    col: tok_col,
                });
                advance(&mut i, &mut col, consumed);
            }
            other => {
                return Err(err(
                    format!("unexpected character `{other}`"),
                    tok_line,
                    tok_col,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_reachability_rule() {
        let toks = kinds("r1 reachable(@S,D) :- link(@S,D).");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("r1".into()),
                TokenKind::Ident("reachable".into()),
                TokenKind::LParen,
                TokenKind::At,
                TokenKind::Variable("S".into()),
                TokenKind::Comma,
                TokenKind::Variable("D".into()),
                TokenKind::RParen,
                TokenKind::ColonDash,
                TokenKind::Ident("link".into()),
                TokenKind::LParen,
                TokenKind::At,
                TokenKind::Variable("S".into()),
                TokenKind::Comma,
                TokenKind::Variable("D".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_and_assignment() {
        let toks = kinds("C := C1 + C2, C < 10, C >= 3, X != Y, A == B, D <= E");
        assert!(toks.contains(&TokenKind::ColonEq));
        assert!(toks.contains(&TokenKind::Plus));
        assert!(toks.contains(&TokenKind::Lt));
        assert!(toks.contains(&TokenKind::Ge));
        assert!(toks.contains(&TokenKind::Ne));
        assert!(toks.contains(&TokenKind::EqEq));
        assert!(toks.contains(&TokenKind::Le));
    }

    #[test]
    fn lexes_context_block_and_says() {
        let toks = kinds("At S:\n s1 reachable(S,D) :- link(S,D).\n s3 p(Z)@Z :- Z says q(S,Z).");
        assert!(toks.contains(&TokenKind::Variable("At".into())));
        assert!(toks.contains(&TokenKind::Colon));
        assert!(toks.contains(&TokenKind::Ident("says".into())));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = kinds("// comment line\n# another\nlink(a,b). // trailing");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("link".into()),
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
                TokenKind::Period,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn string_and_number_literals() {
        let toks = kinds("cost(\"label\", 42, 7).");
        assert!(toks.contains(&TokenKind::StringLit("label".into())));
        assert!(toks.contains(&TokenKind::Number(42)));
    }

    #[test]
    fn underscore_is_a_wildcard_but_prefix_is_identifier() {
        let toks = kinds("p(_, _x)");
        assert!(toks.contains(&TokenKind::Underscore));
        assert!(toks.contains(&TokenKind::Ident("_x".into())));
    }

    #[test]
    fn errors_carry_positions() {
        let e = tokenize("link(a,\n  $b)").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('$'));
        assert!(e.to_string().contains("lex error"));

        let e = tokenize("p(\"unterminated").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn aggregate_syntax_tokens() {
        let toks = kinds("bestPathCost(@S,D,a_MIN<C>)");
        assert!(toks.contains(&TokenKind::Ident("a_MIN".into())));
        assert!(toks.contains(&TokenKind::Lt));
        assert!(toks.contains(&TokenKind::Gt));
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }
}
