//! Abstract syntax for NDlog and SeNDlog programs.
//!
//! The grammar follows Section 2 of the paper:
//!
//! ```text
//! r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
//! ```
//!
//! and, for SeNDlog, context blocks and the `says` operator:
//!
//! ```text
//! At S:
//! s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).
//! ```
//!
//! Location specifiers (`@X` on an attribute) mark the attribute that
//! determines where a tuple lives; the SeNDlog head annotation (`@Z` after
//! the head atom) marks the context a derived tuple is exported to.

use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// Aggregate functions allowed in rule heads (`a_MIN<C>` in NDlog syntax).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AggFunc {
    /// Minimum of the aggregated attribute over the group.
    Min,
    /// Maximum of the aggregated attribute over the group.
    Max,
    /// Number of derivations in the group.
    Count,
    /// Sum of the aggregated attribute over the group.
    Sum,
}

impl AggFunc {
    /// NDlog surface syntax for the aggregate.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Min => "a_MIN",
            AggFunc::Max => "a_MAX",
            AggFunc::Count => "a_COUNT",
            AggFunc::Sum => "a_SUM",
        }
    }
}

/// A term appearing as a predicate argument.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Term {
    /// A variable (upper-case initial in the surface syntax).
    Variable(String),
    /// A constant value.
    Constant(Value),
    /// An aggregate over a variable; only valid in rule heads.
    Aggregate(AggFunc, String),
    /// The anonymous variable `_`.
    Wildcard,
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Variable(name.into())
    }

    /// Convenience constructor for a constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Constant(value.into())
    }

    /// The variable name, if this term is a variable or aggregate.
    pub fn variable_name(&self) -> Option<&str> {
        match self {
            Term::Variable(v) => Some(v),
            Term::Aggregate(_, v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Variable(v) => write!(f, "{v}"),
            Term::Constant(c) => write!(f, "{c}"),
            Term::Aggregate(func, v) => write!(f, "{}<{v}>", func.name()),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// Binary operators in arithmetic and comparison expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Remainder.
    Mod,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// True for operators whose result is boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// An arithmetic / boolean / function expression.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum Expr {
    /// A term (variable or constant).
    Term(Term),
    /// A binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// A built-in function call (`f_concat(S, P)` etc.).
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for a variable expression.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Term(Term::var(name))
    }

    /// Convenience constructor for a constant expression.
    pub fn constant(value: impl Into<Value>) -> Self {
        Expr::Term(Term::constant(value))
    }

    /// Collects the variables referenced by this expression.
    pub fn variables(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Term(Term::Variable(v)) | Expr::Term(Term::Aggregate(_, v)) => {
                out.insert(v.clone());
            }
            Expr::Term(_) => {}
            Expr::BinOp(_, a, b) => {
                a.variables(out);
                b.variables(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::BinOp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A predicate applied to arguments, possibly with NDlog/SeNDlog
/// annotations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Predicate name (lower-case initial in the surface syntax).
    pub predicate: String,
    /// Argument terms.
    pub args: Vec<Term>,
    /// Index of the argument carrying the `@` location specifier, if any.
    pub location: Option<usize>,
    /// SeNDlog export annotation on rule heads: the derived tuple is shipped
    /// to this principal's context (`head(...)@Z`).
    pub export_to: Option<Term>,
    /// SeNDlog `says` annotation on body atoms: the asserting principal
    /// (`W says reachable(S,Y)`).
    pub says: Option<Term>,
}

impl Atom {
    /// Creates a plain atom with no annotations.
    pub fn new(predicate: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            args,
            location: None,
            export_to: None,
            says: None,
        }
    }

    /// Builder: sets the location-specifier argument index.
    pub fn at(mut self, location: usize) -> Self {
        assert!(location < self.args.len(), "location index out of range");
        self.location = Some(location);
        self
    }

    /// Builder: sets the SeNDlog export annotation.
    pub fn exported_to(mut self, principal: Term) -> Self {
        self.export_to = Some(principal);
        self
    }

    /// Builder: sets the SeNDlog `says` annotation.
    pub fn said_by(mut self, principal: Term) -> Self {
        self.says = Some(principal);
        self
    }

    /// The term occupying the location-specifier position, if declared.
    pub fn location_term(&self) -> Option<&Term> {
        self.location.map(|i| &self.args[i])
    }

    /// Collects the variables appearing in the atom's arguments (including
    /// `says` / export annotations).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for t in &self.args {
            if let Some(v) = t.variable_name() {
                out.insert(v.to_string());
            }
        }
        if let Some(Term::Variable(v)) = &self.says {
            out.insert(v.clone());
        }
        if let Some(Term::Variable(v)) = &self.export_to {
            out.insert(v.clone());
        }
        out
    }

    /// True if every argument is a constant (a ground fact).
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| matches!(t, Term::Constant(_)))
    }

    /// True if any head argument is an aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.args.iter().any(|t| matches!(t, Term::Aggregate(..)))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = &self.says {
            write!(f, "{p} says ")?;
        }
        write!(f, "{}(", self.predicate)?;
        for (i, arg) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if self.location == Some(i) {
                write!(f, "@")?;
            }
            write!(f, "{arg}")?;
        }
        write!(f, ")")?;
        if let Some(e) = &self.export_to {
            write!(f, "@{e}")?;
        }
        Ok(())
    }
}

/// One element of a rule body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BodyLiteral {
    /// A positive predicate occurrence.
    Atom(Atom),
    /// A boolean filter (selection) over bound variables.
    Filter(Expr),
    /// An assignment `X := expr` binding a new variable.
    Assign {
        /// The variable being bound.
        var: String,
        /// The defining expression.
        expr: Expr,
    },
}

impl fmt::Display for BodyLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyLiteral::Atom(a) => write!(f, "{a}"),
            BodyLiteral::Filter(e) => write!(f, "{e}"),
            BodyLiteral::Assign { var, expr } => write!(f, "{var} := {expr}"),
        }
    }
}

/// A single rule `head :- body.`
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Rule label (`r1`, `s2`, ...) — auto-generated when omitted.
    pub label: String,
    /// The SeNDlog context this rule executes in (`At S:`); `None` for plain
    /// NDlog rules.
    pub context: Option<Term>,
    /// The rule head.
    pub head: Atom,
    /// The rule body (conjunction).
    pub body: Vec<BodyLiteral>,
}

impl Rule {
    /// Body atoms only (skipping filters and assignments).
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| match l {
            BodyLiteral::Atom(a) => Some(a),
            _ => None,
        })
    }

    /// The set of variables bound by body atoms and assignments.
    pub fn bound_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for lit in &self.body {
            match lit {
                BodyLiteral::Atom(a) => out.extend(a.variables()),
                BodyLiteral::Assign { var, .. } => {
                    out.insert(var.clone());
                }
                BodyLiteral::Filter(_) => {}
            }
        }
        if let Some(Term::Variable(v)) = &self.context {
            out.insert(v.clone());
        }
        out
    }

    /// The distinct location-specifier variables used by body atoms.
    pub fn body_location_variables(&self) -> BTreeSet<String> {
        self.body_atoms()
            .filter_map(|a| a.location_term())
            .filter_map(|t| t.variable_name().map(|s| s.to_string()))
            .collect()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} :- ", self.label, self.head)?;
        for (i, lit) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ".")
    }
}

/// A ground fact inserted into a base relation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fact {
    /// The ground atom.
    pub atom: Atom,
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.", self.atom)
    }
}

/// A parsed NDlog / SeNDlog program.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Rules, in source order.
    pub rules: Vec<Rule>,
    /// Ground facts, in source order.
    pub facts: Vec<Fact>,
}

impl Program {
    /// Names of predicates that appear in some rule head (derived
    /// predicates); every other predicate is a base (extensional) relation.
    pub fn derived_predicates(&self) -> BTreeSet<String> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.clone())
            .collect()
    }

    /// Names of predicates that appear only in rule bodies or facts.
    pub fn base_predicates(&self) -> BTreeSet<String> {
        let derived = self.derived_predicates();
        let mut base = BTreeSet::new();
        for rule in &self.rules {
            for atom in rule.body_atoms() {
                if !derived.contains(&atom.predicate) {
                    base.insert(atom.predicate.clone());
                }
            }
        }
        for fact in &self.facts {
            if !derived.contains(&fact.atom.predicate) {
                base.insert(fact.atom.predicate.clone());
            }
        }
        base
    }

    /// True if any rule or body atom uses SeNDlog constructs (`says`,
    /// context blocks, export annotations).
    pub fn uses_sendlog(&self) -> bool {
        self.rules.iter().any(|r| {
            r.context.is_some()
                || r.head.export_to.is_some()
                || r.body_atoms().any(|a| a.says.is_some())
        })
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        for fact in &self.facts {
            writeln!(f, "{fact}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reachable_rule() -> Rule {
        // r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
        Rule {
            label: "r2".into(),
            context: None,
            head: Atom::new("reachable", vec![Term::var("S"), Term::var("D")]).at(0),
            body: vec![
                BodyLiteral::Atom(Atom::new("link", vec![Term::var("S"), Term::var("Z")]).at(0)),
                BodyLiteral::Atom(
                    Atom::new("reachable", vec![Term::var("Z"), Term::var("D")]).at(0),
                ),
            ],
        }
    }

    #[test]
    fn atom_display_shows_location_and_annotations() {
        let atom = Atom::new("reachable", vec![Term::var("S"), Term::var("D")]).at(0);
        assert_eq!(atom.to_string(), "reachable(@S,D)");

        let says = Atom::new("linkD", vec![Term::var("S"), Term::var("Z")]).said_by(Term::var("Z"));
        assert_eq!(says.to_string(), "Z says linkD(S,Z)");

        let exported = Atom::new("reachable", vec![Term::var("Z"), Term::var("Y")])
            .exported_to(Term::var("Z"));
        assert_eq!(exported.to_string(), "reachable(Z,Y)@Z");
    }

    #[test]
    fn rule_display_matches_surface_syntax() {
        assert_eq!(
            reachable_rule().to_string(),
            "r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D)."
        );
    }

    #[test]
    fn rule_variable_collection() {
        let rule = reachable_rule();
        let bound = rule.bound_variables();
        assert!(bound.contains("S") && bound.contains("Z") && bound.contains("D"));
        assert_eq!(
            rule.body_location_variables()
                .into_iter()
                .collect::<Vec<_>>(),
            vec!["S".to_string(), "Z".to_string()]
        );
    }

    #[test]
    fn program_predicate_classification() {
        let program = Program {
            rules: vec![reachable_rule()],
            facts: vec![Fact {
                atom: Atom::new(
                    "link",
                    vec![
                        Term::constant(Value::Addr(0)),
                        Term::constant(Value::Addr(1)),
                    ],
                ),
            }],
        };
        assert!(program.derived_predicates().contains("reachable"));
        assert!(program.base_predicates().contains("link"));
        assert!(!program.base_predicates().contains("reachable"));
        assert!(!program.uses_sendlog());
    }

    #[test]
    fn sendlog_detection() {
        let mut rule = reachable_rule();
        rule.context = Some(Term::var("S"));
        let program = Program {
            rules: vec![rule],
            facts: vec![],
        };
        assert!(program.uses_sendlog());
    }

    #[test]
    fn ground_atoms_and_aggregates() {
        let ground = Atom::new(
            "link",
            vec![
                Term::constant(Value::Addr(1)),
                Term::constant(Value::Addr(2)),
            ],
        );
        assert!(ground.is_ground());
        let agg = Atom::new(
            "bestPathCost",
            vec![
                Term::var("S"),
                Term::var("D"),
                Term::Aggregate(AggFunc::Min, "C".into()),
            ],
        );
        assert!(agg.has_aggregate());
        assert!(!agg.is_ground());
        assert_eq!(agg.to_string(), "bestPathCost(S,D,a_MIN<C>)");
    }

    #[test]
    fn expr_display_and_variables() {
        let e = Expr::BinOp(
            BinOp::Add,
            Box::new(Expr::var("C1")),
            Box::new(Expr::var("C2")),
        );
        assert_eq!(e.to_string(), "(C1 + C2)");
        let mut vars = BTreeSet::new();
        e.variables(&mut vars);
        assert_eq!(vars.len(), 2);

        let call = Expr::Call("f_concat".into(), vec![Expr::var("S"), Expr::var("P")]);
        assert_eq!(call.to_string(), "f_concat(S, P)");
    }

    #[test]
    fn binop_metadata() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert_eq!(BinOp::Ne.symbol(), "!=");
    }

    #[test]
    #[should_panic(expected = "location index out of range")]
    fn atom_location_bounds_checked() {
        let _ = Atom::new("p", vec![Term::var("X")]).at(3);
    }
}
