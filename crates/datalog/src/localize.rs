//! The localization rewrite of declarative networking.
//!
//! NDlog rules may reference tuples stored at different nodes — the
//! canonical example is the transitive-closure rule of Section 2.1:
//!
//! ```text
//! r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
//! ```
//!
//! whose body spans locations `S` and `Z`.  A distributed query processor can
//! only join tuples that are co-located, so the rule is rewritten (Loo et
//! al., SIGMOD 2006; referenced by the paper as the "localization rewrite")
//! into rules whose bodies are single-site:
//!
//! ```text
//! r2_loc1 link_at_z(S,@Z)  :- link(@S,Z).
//! r2      reachable(@S,D)  :- link_at_z(S,@Z), reachable(@Z,D).
//! ```
//!
//! The first rule sends every link tuple to its destination end; the second
//! then joins locally at `Z` and ships the derived `reachable` tuple back to
//! `S` (a head whose location differs from the body's is exactly what
//! generates network messages).
//!
//! Rules spanning more than two sites are handled by staging: all atoms
//! co-located at one site are joined into an intermediate predicate that is
//! shipped to the next site, repeating until the body is single-site.
//!
//! SeNDlog rules are localized by construction — all body atoms live in the
//! rule's context and exports are explicit `@` annotations — so the rewrite
//! only applies to plain NDlog rules.

use crate::ast::{Atom, BodyLiteral, Program, Rule, Term};
use std::collections::BTreeSet;
use std::fmt;

/// An error raised when a rule cannot be localized automatically.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalizeError {
    /// Label of the offending rule.
    pub rule: String,
    /// Explanation of the failure.
    pub message: String,
}

impl fmt::Display for LocalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot localize rule {}: {}", self.rule, self.message)
    }
}

impl std::error::Error for LocalizeError {}

/// Rewrites every rule of `program` so that all body atoms of each rule share
/// a single location specifier variable.  Facts are passed through unchanged.
pub fn localize_program(program: &Program) -> Result<Program, LocalizeError> {
    let mut out = Program {
        rules: Vec::new(),
        facts: program.facts.clone(),
    };
    for rule in &program.rules {
        let rewritten = localize_rule(rule)?;
        out.rules.extend(rewritten);
    }
    Ok(out)
}

/// Rewrites a single rule; returns the (possibly longer) list of localized
/// rules that replace it.  The last rule in the returned list derives the
/// original head.
pub fn localize_rule(rule: &Rule) -> Result<Vec<Rule>, LocalizeError> {
    // SeNDlog rules are localized by construction.
    if rule.context.is_some() {
        return Ok(vec![rule.clone()]);
    }

    let mut current = rule.clone();
    let mut extra_rules: Vec<Rule> = Vec::new();
    let mut counter = 0usize;

    loop {
        let locations = current.body_location_variables();
        if locations.len() <= 1 {
            break;
        }
        let Some((from, to)) = choose_shipment(&current, &locations) else {
            return Err(LocalizeError {
                rule: rule.label.clone(),
                message: format!(
                    "body spans locations {{{}}} but no atom connects them; rewrite it manually",
                    locations.iter().cloned().collect::<Vec<_>>().join(", ")
                ),
            });
        };
        counter += 1;

        // Partition the body: atoms located at `from` form the shipped group.
        let mut group: Vec<Atom> = Vec::new();
        let mut rest: Vec<BodyLiteral> = Vec::new();
        for lit in &current.body {
            match lit {
                BodyLiteral::Atom(a) if atom_location_var(a) == Some(from.clone()) => {
                    group.push(a.clone());
                }
                other => rest.push(other.clone()),
            }
        }
        debug_assert!(!group.is_empty());

        // Variables the rest of the rule (head, other literals) still needs.
        let mut needed: BTreeSet<String> = rule_head_variables(&current);
        for lit in &rest {
            match lit {
                BodyLiteral::Atom(a) => needed.extend(a.variables()),
                BodyLiteral::Filter(e) => e.variables(&mut needed),
                BodyLiteral::Assign { expr, .. } => expr.variables(&mut needed),
            }
        }
        let group_vars: BTreeSet<String> = group.iter().flat_map(|a| a.variables()).collect();
        // The intermediate carries the group variables that are needed
        // downstream, always including the destination location variable.
        let mut carried: Vec<String> = group_vars
            .iter()
            .filter(|v| needed.contains(*v) || **v == to)
            .cloned()
            .collect();
        if !carried.contains(&to) {
            carried.push(to.clone());
        }
        carried.sort();

        // Intermediate predicate: a single-atom group keeps a readable
        // `pred_at_loc` name (the linkD pattern of the paper); larger groups
        // get a rule-derived name.
        let predicate = if group.len() == 1 {
            format!("{}_at_{}", group[0].predicate, to.to_lowercase())
        } else {
            format!("{}_stage{}_at_{}", rule.label, counter, to.to_lowercase())
        };
        let loc_idx = carried
            .iter()
            .position(|v| *v == to)
            .expect("destination variable is always carried");
        let mut intermediate = Atom::new(
            predicate,
            carried.iter().map(|v| Term::var(v.clone())).collect(),
        );
        intermediate.location = Some(loc_idx);

        // Forwarding rule: intermediate(@to, ...) :- group atoms (at `from`).
        extra_rules.push(Rule {
            label: format!("{}_loc{}", rule.label, counter),
            context: None,
            head: intermediate.clone(),
            body: group.into_iter().map(BodyLiteral::Atom).collect(),
        });

        // The main rule now joins the intermediate with the rest.
        let mut new_body = vec![BodyLiteral::Atom(intermediate)];
        new_body.extend(rest);
        current.body = new_body;
    }

    extra_rules.push(current);
    Ok(extra_rules)
}

fn atom_location_var(atom: &Atom) -> Option<String> {
    atom.location_term()
        .and_then(|t| t.variable_name().map(str::to_string))
}

fn rule_head_variables(rule: &Rule) -> BTreeSet<String> {
    let mut vars = rule.head.variables();
    if let Some(Term::Variable(v)) = &rule.head.export_to {
        vars.insert(v.clone());
    }
    vars
}

/// Chooses which location's atoms to ship (`from`) and where to ship them
/// (`to`).  A shipment is possible when some atom located at `from` mentions
/// `to` among its arguments (so the forwarded tuple knows its destination).
///
/// Preference: ship *towards* the location that hosts an occurrence of the
/// rule's own head predicate (the recursive side stays put, mirroring the
/// paper's linkD rewrite); break remaining ties by shipping the smaller group
/// and then lexicographically.
fn choose_shipment(rule: &Rule, locations: &BTreeSet<String>) -> Option<(String, String)> {
    let mut best: Option<(bool, usize, String, String)> = None;
    for from in locations {
        for to in locations {
            if from == to {
                continue;
            }
            let connects = rule.body_atoms().any(|a| {
                atom_location_var(a).as_deref() == Some(from.as_str())
                    && a.args
                        .iter()
                        .any(|t| t.variable_name() == Some(to.as_str()))
            });
            if !connects {
                continue;
            }
            let to_hosts_recursion = rule.body_atoms().any(|a| {
                a.predicate == rule.head.predicate
                    && atom_location_var(a).as_deref() == Some(to.as_str())
            });
            let group_size = rule
                .body_atoms()
                .filter(|a| atom_location_var(a).as_deref() == Some(from.as_str()))
                .count();
            // Larger key wins: recursion-hosting destination first, then
            // smaller shipped group (invert), then lexicographic for
            // determinism.
            let key = (
                to_hosts_recursion,
                usize::MAX - group_size,
                from.clone(),
                to.clone(),
            );
            let better = match &best {
                None => true,
                Some(b) => key > *b,
            };
            if better {
                best = Some(key);
            }
        }
    }
    best.map(|(_, _, from, to)| (from, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::validate::validate_program;

    #[test]
    fn single_site_rules_pass_through() {
        let program = parse_program("r1 reachable(@S,D) :- link(@S,D).").unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules, program.rules);
    }

    #[test]
    fn transitive_closure_rule_is_rewritten() {
        let program = parse_program("r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).").unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules.len(), 2, "{localized}");

        // First rule forwards link tuples to their destination end.
        let fwd = &localized.rules[0];
        assert_eq!(fwd.head.predicate, "link_at_z");
        assert_eq!(fwd.head.location_term(), Some(&Term::var("Z")));
        assert_eq!(fwd.body.len(), 1);

        // Second rule joins locally at Z.
        let joined = &localized.rules[1];
        let locs = joined.body_location_variables();
        assert_eq!(locs.len(), 1);
        assert!(locs.contains("Z"));
        // The head still ships results back to S.
        assert_eq!(joined.head.location_term(), Some(&Term::var("S")));

        // The rewritten program is still valid.
        assert!(validate_program(&localized).is_ok());
    }

    #[test]
    fn best_path_recursive_rule_is_rewritten() {
        let program = parse_program(
            "sp2 path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C := C1 + C2, P := f_concat(S,P2).",
        )
        .unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules.len(), 2);
        let joined = localized.rules.last().unwrap();
        assert_eq!(joined.body_location_variables().len(), 1);
        // Assignments survive the rewrite and their inputs are still carried.
        assert_eq!(
            joined
                .body
                .iter()
                .filter(|l| matches!(l, BodyLiteral::Assign { .. }))
                .count(),
            2
        );
        // C1 is produced at S but consumed by the assignment, so the
        // forwarded link tuple must still carry it.
        let fwd = &localized.rules[0];
        assert!(fwd.head.variables().contains("C1"), "{fwd}");
        assert!(validate_program(&localized).is_ok());
    }

    #[test]
    fn sendlog_rules_are_untouched() {
        let program = parse_program(
            "At S:\n s3 reachable(Z,Y)@Z :- Z says linkD(S,Z), W says reachable(S,Y).",
        )
        .unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.rules, program.rules);
    }

    #[test]
    fn disconnected_locations_are_rejected() {
        // No body atom mentions both S and T, so the rewrite cannot find a
        // forwarding atom.
        let program = parse_program("r bad(@S,T) :- p(@S), q(@T).").unwrap();
        let err = localize_program(&program).unwrap_err();
        assert!(err.message.contains("manually"));
        assert!(err.to_string().contains("cannot localize"));
    }

    #[test]
    fn three_site_chain_localizes_to_single_site_rules() {
        let program =
            parse_program("r3 threeHop(@S,D) :- link(@S,A), link(@A,B), link(@B,D).").unwrap();
        let localized = localize_program(&program).unwrap();
        for rule in &localized.rules {
            assert!(
                rule.body_location_variables().len() <= 1,
                "rule not single-site: {rule}"
            );
        }
        // One intermediate per removed site, plus the final rule.
        assert_eq!(localized.rules.len(), 3, "{localized}");
        assert!(validate_program(&localized).is_ok());
    }

    #[test]
    fn facts_are_preserved() {
        let program = parse_program(
            "r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).\n link(a,b).\n link(b,c).",
        )
        .unwrap();
        let localized = localize_program(&program).unwrap();
        assert_eq!(localized.facts.len(), 2);
    }
}
