//! # pasn-bdd
//!
//! A from-scratch ordered binary decision diagram (OBDD) package, standing in
//! for the BuDDy library used by the paper's prototype (Section 6: "We
//! utilize the OpenSSL v0.9.8b, and Buddy BDD v2.4 libraries to support
//! encryption and provenance").
//!
//! Condensed provenance (Section 4.4) annotates each tuple with a boolean
//! expression over the *base tuples* (equivalently, the principals that
//! asserted them) from which it was derived: `+` is logical OR (alternative
//! derivations), `*` is logical AND (joined antecedents).  Encoding those
//! expressions as reduced OBDDs gives a canonical, absorbed form — the
//! paper's example `<a + a*b>` condenses to `<a>` because the two functions
//! are equal as boolean functions.
//!
//! The manager uses hash-consing (a unique table) so structurally equal nodes
//! are shared, plus a memoised `apply` cache.  Typical provenance expressions
//! are tiny (tens of variables), so the implementation favours clarity, but
//! property tests exercise expressions with hundreds of nodes.
//!
//! ```
//! use pasn_bdd::BddManager;
//! let mut m = BddManager::new();
//! let a = m.var(0);
//! let b = m.var(1);
//! // a + a*b  ==  a   (absorption — the paper's Figure 2 example)
//! let ab = m.and(a, b);
//! let expr = m.or(a, ab);
//! assert_eq!(expr, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expr;
pub mod manager;

pub use expr::BoolExpr;
pub use manager::{BddManager, BddRef, VarId};
