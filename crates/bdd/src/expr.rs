//! A small boolean-expression AST bridging provenance polynomials and BDDs.
//!
//! Provenance expressions arrive from the engine in the `+` / `*` form of the
//! paper (union and join over base-tuple variables).  [`BoolExpr`] is that
//! syntax tree; [`BoolExpr::to_bdd`] compiles it into a canonical BDD, and
//! [`BoolExpr::from_bdd`] renders a canonical BDD back into a sum-of-products
//! expression for display (the `<a>` annotation in the paper's Figure 2).

use crate::manager::{BddManager, BddRef, VarId};
use std::fmt;

/// A boolean expression over provenance variables.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum BoolExpr {
    /// The constant false (empty union — no derivation).
    False,
    /// The constant true (the tuple is axiomatically present).
    True,
    /// A single base-tuple / principal variable.
    Var(VarId),
    /// Union of alternative derivations (the paper's `+`).
    Or(Vec<BoolExpr>),
    /// Join of antecedents (the paper's `*`).
    And(Vec<BoolExpr>),
    /// Negation (not used by provenance proper, but needed for trust
    /// policies of the form "not derived via principal X").
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Convenience constructor for a variable.
    pub fn var(v: VarId) -> Self {
        BoolExpr::Var(v)
    }

    /// Builds the union of two expressions, flattening nested unions.
    pub fn or(self, other: BoolExpr) -> Self {
        match (self, other) {
            (BoolExpr::False, x) | (x, BoolExpr::False) => x,
            (BoolExpr::True, _) | (_, BoolExpr::True) => BoolExpr::True,
            (BoolExpr::Or(mut xs), BoolExpr::Or(ys)) => {
                xs.extend(ys);
                BoolExpr::Or(xs)
            }
            (BoolExpr::Or(mut xs), y) => {
                xs.push(y);
                BoolExpr::Or(xs)
            }
            (x, BoolExpr::Or(mut ys)) => {
                ys.insert(0, x);
                BoolExpr::Or(ys)
            }
            (x, y) => BoolExpr::Or(vec![x, y]),
        }
    }

    /// Builds the conjunction of two expressions, flattening nested joins.
    pub fn and(self, other: BoolExpr) -> Self {
        match (self, other) {
            (BoolExpr::False, _) | (_, BoolExpr::False) => BoolExpr::False,
            (BoolExpr::True, x) | (x, BoolExpr::True) => x,
            (BoolExpr::And(mut xs), BoolExpr::And(ys)) => {
                xs.extend(ys);
                BoolExpr::And(xs)
            }
            (BoolExpr::And(mut xs), y) => {
                xs.push(y);
                BoolExpr::And(xs)
            }
            (x, BoolExpr::And(mut ys)) => {
                ys.insert(0, x);
                BoolExpr::And(ys)
            }
            (x, y) => BoolExpr::And(vec![x, y]),
        }
    }

    /// Compiles the expression into a BDD owned by `manager`.
    pub fn to_bdd(&self, manager: &mut BddManager) -> BddRef {
        match self {
            BoolExpr::False => manager.false_ref(),
            BoolExpr::True => manager.true_ref(),
            BoolExpr::Var(v) => manager.var(*v),
            BoolExpr::Or(children) => {
                let mut acc = manager.false_ref();
                for c in children {
                    let cb = c.to_bdd(manager);
                    acc = manager.or(acc, cb);
                }
                acc
            }
            BoolExpr::And(children) => {
                let mut acc = manager.true_ref();
                for c in children {
                    let cb = c.to_bdd(manager);
                    acc = manager.and(acc, cb);
                }
                acc
            }
            BoolExpr::Not(inner) => {
                let ib = inner.to_bdd(manager);
                manager.not(ib)
            }
        }
    }

    /// Renders a BDD back into a sum-of-products expression (positive and
    /// negative literals).  The result is canonical in the sense that equal
    /// BDDs produce equal expressions.
    pub fn from_bdd(manager: &BddManager, bdd: BddRef) -> BoolExpr {
        if bdd == manager.false_ref() {
            return BoolExpr::False;
        }
        if bdd == manager.true_ref() {
            return BoolExpr::True;
        }
        let cubes = manager.cubes(bdd, usize::MAX);
        let mut terms: Vec<BoolExpr> = cubes
            .into_iter()
            .map(|cube| {
                let mut lits: Vec<BoolExpr> = cube
                    .into_iter()
                    .map(|(v, positive)| {
                        if positive {
                            BoolExpr::Var(v)
                        } else {
                            BoolExpr::Not(Box::new(BoolExpr::Var(v)))
                        }
                    })
                    .collect();
                match lits.len() {
                    0 => BoolExpr::True,
                    1 => lits.pop().expect("len checked"),
                    _ => BoolExpr::And(lits),
                }
            })
            .collect();
        match terms.len() {
            0 => BoolExpr::False,
            1 => terms.pop().expect("len checked"),
            _ => BoolExpr::Or(terms),
        }
    }

    /// Renders a **monotone** BDD (such as a provenance function, which never
    /// negates base tuples) as a minimal sum of positive-literal products.
    ///
    /// Each satisfying path contributes the set of its positive literals;
    /// for a monotone function dropping the negative literals preserves the
    /// function, and absorption removes redundant products — yielding the
    /// paper's `<a + a*b> → <a>` style annotations.  Calling this on a
    /// non-monotone function over-approximates it.
    pub fn monotone_from_bdd(manager: &BddManager, bdd: BddRef) -> BoolExpr {
        if bdd == manager.false_ref() {
            return BoolExpr::False;
        }
        if bdd == manager.true_ref() {
            return BoolExpr::True;
        }
        let mut products: Vec<Vec<VarId>> = manager
            .cubes(bdd, usize::MAX)
            .into_iter()
            .map(|cube| {
                let mut vars: Vec<VarId> = cube
                    .into_iter()
                    .filter(|(_, positive)| *positive)
                    .map(|(v, _)| v)
                    .collect();
                vars.sort_unstable();
                vars.dedup();
                vars
            })
            .collect();
        products.sort();
        products.dedup();
        // Absorption: drop any product that is a superset of another.
        let snapshot = products.clone();
        products.retain(|p| {
            !snapshot
                .iter()
                .any(|other| other != p && other.iter().all(|v| p.contains(v)))
        });
        if products.iter().any(|p| p.is_empty()) {
            return BoolExpr::True;
        }
        let mut terms: Vec<BoolExpr> = products
            .into_iter()
            .map(|vars| {
                let mut lits: Vec<BoolExpr> = vars.into_iter().map(BoolExpr::Var).collect();
                if lits.len() == 1 {
                    lits.pop().expect("len checked")
                } else {
                    BoolExpr::And(lits)
                }
            })
            .collect();
        match terms.len() {
            0 => BoolExpr::False,
            1 => terms.pop().expect("len checked"),
            _ => BoolExpr::Or(terms),
        }
    }

    /// Number of variable occurrences (a rough size measure used when
    /// comparing condensed vs uncondensed provenance).
    pub fn literal_count(&self) -> usize {
        match self {
            BoolExpr::False | BoolExpr::True => 0,
            BoolExpr::Var(_) => 1,
            BoolExpr::Or(children) | BoolExpr::And(children) => {
                children.iter().map(|c| c.literal_count()).sum()
            }
            BoolExpr::Not(inner) => inner.literal_count(),
        }
    }

    /// Renders the expression using a naming function for variables, in the
    /// paper's `+`/`*` notation (e.g. `a + a*b`).
    pub fn render<F: Fn(VarId) -> String>(&self, name: &F) -> String {
        fn go<F: Fn(VarId) -> String>(e: &BoolExpr, name: &F, parent_is_and: bool) -> String {
            match e {
                BoolExpr::False => "0".to_string(),
                BoolExpr::True => "1".to_string(),
                BoolExpr::Var(v) => name(*v),
                BoolExpr::Not(inner) => format!("!{}", go(inner, name, true)),
                BoolExpr::And(children) => children
                    .iter()
                    .map(|c| go(c, name, true))
                    .collect::<Vec<_>>()
                    .join("*"),
                BoolExpr::Or(children) => {
                    let body = children
                        .iter()
                        .map(|c| go(c, name, false))
                        .collect::<Vec<_>>()
                        .join(" + ");
                    if parent_is_and {
                        format!("({body})")
                    } else {
                        body
                    }
                }
            }
        }
        go(self, name, false)
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&|v| format!("x{v}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_simplify_constants() {
        let a = BoolExpr::var(0);
        assert_eq!(a.clone().or(BoolExpr::False), a);
        assert_eq!(a.clone().or(BoolExpr::True), BoolExpr::True);
        assert_eq!(a.clone().and(BoolExpr::True), a);
        assert_eq!(a.clone().and(BoolExpr::False), BoolExpr::False);
    }

    #[test]
    fn paper_example_condenses_via_bdd() {
        // <a + a*b>  -->  <a>
        let a = BoolExpr::var(0);
        let b = BoolExpr::var(1);
        let expr = a.clone().or(a.clone().and(b));
        let mut m = BddManager::new();
        let bdd = expr.to_bdd(&mut m);
        let condensed = BoolExpr::from_bdd(&m, bdd);
        assert_eq!(condensed, BoolExpr::Var(0));
        assert_eq!(
            condensed.render(&|v| ["a", "b"][v as usize].to_string()),
            "a"
        );
    }

    #[test]
    fn to_bdd_equal_functions_share_reference() {
        let mut m = BddManager::new();
        // (x0 + x1) * x2  and  x0*x2 + x1*x2 are the same function.
        let e1 = BoolExpr::var(0).or(BoolExpr::var(1)).and(BoolExpr::var(2));
        let e2 = BoolExpr::var(0)
            .and(BoolExpr::var(2))
            .or(BoolExpr::var(1).and(BoolExpr::var(2)));
        assert_eq!(e1.to_bdd(&mut m), e2.to_bdd(&mut m));
    }

    #[test]
    fn from_bdd_roundtrips_semantics() {
        let mut m = BddManager::new();
        let e = BoolExpr::var(0)
            .and(BoolExpr::var(1))
            .or(BoolExpr::var(2).and(BoolExpr::Not(Box::new(BoolExpr::var(0)))));
        let bdd = e.to_bdd(&mut m);
        let back = BoolExpr::from_bdd(&m, bdd);
        let bdd2 = back.to_bdd(&mut m);
        assert_eq!(bdd, bdd2);
    }

    #[test]
    fn monotone_from_bdd_reproduces_minimal_products() {
        let mut m = BddManager::new();
        // a + a*b condenses to a.
        let e = BoolExpr::var(0).or(BoolExpr::var(0).and(BoolExpr::var(1)));
        let bdd = e.to_bdd(&mut m);
        assert_eq!(BoolExpr::monotone_from_bdd(&m, bdd), BoolExpr::Var(0));

        // a*b + c keeps both products, with no negative literals.
        let e2 = BoolExpr::var(0).and(BoolExpr::var(1)).or(BoolExpr::var(2));
        let bdd2 = e2.to_bdd(&mut m);
        let rendered = BoolExpr::monotone_from_bdd(&m, bdd2);
        assert_eq!(rendered.to_bdd(&mut m), bdd2);
        assert!(!format!("{rendered}").contains('!'));

        // Constants pass through.
        assert_eq!(
            BoolExpr::monotone_from_bdd(&m, m.true_ref()),
            BoolExpr::True
        );
        assert_eq!(
            BoolExpr::monotone_from_bdd(&m, m.false_ref()),
            BoolExpr::False
        );
    }

    #[test]
    fn literal_count_counts_occurrences() {
        let e = BoolExpr::var(0).or(BoolExpr::var(0).and(BoolExpr::var(1)));
        assert_eq!(e.literal_count(), 3);
        assert_eq!(BoolExpr::True.literal_count(), 0);
    }

    #[test]
    fn render_uses_paper_notation() {
        let e = BoolExpr::var(0).or(BoolExpr::var(0).and(BoolExpr::var(1)));
        let names = |v: VarId| ["a", "b"][v as usize].to_string();
        assert_eq!(e.render(&names), "a + a*b");
        let f = BoolExpr::var(0).and(BoolExpr::var(1).or(BoolExpr::var(2)));
        let names3 = |v: VarId| ["a", "b", "c"][v as usize].to_string();
        assert_eq!(f.render(&names3), "a*(b + c)");
        assert_eq!(format!("{}", BoolExpr::var(7)), "x7");
    }

    #[test]
    fn display_of_constants() {
        assert_eq!(format!("{}", BoolExpr::True), "1");
        assert_eq!(format!("{}", BoolExpr::False), "0");
    }

    fn arb_expr() -> impl Strategy<Value = BoolExpr> {
        let leaf = prop_oneof![
            Just(BoolExpr::False),
            Just(BoolExpr::True),
            (0u32..6).prop_map(BoolExpr::Var),
        ];
        leaf.prop_recursive(4, 64, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::Or),
                proptest::collection::vec(inner.clone(), 1..4).prop_map(BoolExpr::And),
                inner.prop_map(|e| BoolExpr::Not(Box::new(e))),
            ]
        })
    }

    fn eval(e: &BoolExpr, mask: u32) -> bool {
        match e {
            BoolExpr::False => false,
            BoolExpr::True => true,
            BoolExpr::Var(v) => (mask >> v) & 1 == 1,
            BoolExpr::Or(cs) => cs.iter().any(|c| eval(c, mask)),
            BoolExpr::And(cs) => cs.iter().all(|c| eval(c, mask)),
            BoolExpr::Not(i) => !eval(i, mask),
        }
    }

    proptest! {
        #[test]
        fn prop_bdd_agrees_with_direct_evaluation(e in arb_expr(), mask in 0u32..64) {
            let mut m = BddManager::new();
            let bdd = e.to_bdd(&mut m);
            let via_bdd = m.evaluate(bdd, |v| (mask >> v) & 1 == 1);
            prop_assert_eq!(via_bdd, eval(&e, mask));
        }

        #[test]
        fn prop_from_bdd_is_canonical(e in arb_expr()) {
            let mut m = BddManager::new();
            let bdd = e.to_bdd(&mut m);
            let rendered = BoolExpr::from_bdd(&m, bdd);
            prop_assert_eq!(rendered.to_bdd(&mut m), bdd);
        }

        #[test]
        fn prop_or_and_are_monotone_wrt_truth(e1 in arb_expr(), e2 in arb_expr(), mask in 0u32..64) {
            let or = e1.clone().or(e2.clone());
            let and = e1.clone().and(e2.clone());
            let (v1, v2) = (eval(&e1, mask), eval(&e2, mask));
            prop_assert_eq!(eval(&or, mask), v1 || v2);
            prop_assert_eq!(eval(&and, mask), v1 && v2);
        }
    }
}
