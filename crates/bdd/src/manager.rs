//! The BDD manager: hash-consed node storage and logical operations.

use std::collections::HashMap;

/// Index of a boolean variable in the manager's ordering.
///
/// For provenance use, each variable corresponds to a base tuple (or the
/// principal that asserted it); the engine assigns variable ids in the order
/// base tuples are first encountered.
pub type VarId = u32;

/// A reference to a BDD node owned by a [`BddManager`].
///
/// `BddRef`s are only meaningful with respect to the manager that produced
/// them.  Because the manager hash-conses nodes, two references are equal if
/// and only if they denote the same boolean function — this is what makes
/// condensation (`a + a*b == a`) a simple equality check.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant FALSE function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant TRUE function.
    pub const TRUE: BddRef = BddRef(1);

    /// Raw index (stable within one manager); used for serialisation.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a reference from a raw index previously obtained with
    /// [`Self::index`].  The caller must guarantee it came from the same
    /// manager.
    pub fn from_index(index: u32) -> Self {
        BddRef(index)
    }
}

/// An internal decision node: `if var then high else low`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Node {
    var: VarId,
    low: BddRef,
    high: BddRef,
}

/// Binary operations supported by [`BddManager::apply`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum BinOp {
    And,
    Or,
    Xor,
}

/// A manager owning a forest of reduced, ordered BDDs.
///
/// Variable ordering is the natural order of [`VarId`]s.  All operations are
/// memoised; the caches can be cleared with [`BddManager::clear_caches`] if
/// memory is a concern (provenance expressions in the simulator never need
/// it).
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    apply_cache: HashMap<(BinOp, BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the terminal nodes.
    pub fn new() -> Self {
        // Index 0 = FALSE terminal, index 1 = TRUE terminal.  Terminals are
        // encoded as pseudo-nodes with `var = VarId::MAX` so that every real
        // variable orders before them.
        let terminal = |_which: bool| Node {
            var: VarId::MAX,
            low: BddRef(0),
            high: BddRef(1),
        };
        BddManager {
            nodes: vec![terminal(false), terminal(true)],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// Total number of nodes allocated (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The constant FALSE.
    pub fn false_ref(&self) -> BddRef {
        BddRef::FALSE
    }

    /// The constant TRUE.
    pub fn true_ref(&self) -> BddRef {
        BddRef::TRUE
    }

    /// Returns the BDD for a single variable.
    pub fn var(&mut self, var: VarId) -> BddRef {
        self.mk_node(var, BddRef::FALSE, BddRef::TRUE)
    }

    /// Returns the BDD for the negation of a single variable.
    pub fn nvar(&mut self, var: VarId) -> BddRef {
        self.mk_node(var, BddRef::TRUE, BddRef::FALSE)
    }

    fn is_terminal(r: BddRef) -> bool {
        r == BddRef::FALSE || r == BddRef::TRUE
    }

    fn node(&self, r: BddRef) -> Node {
        self.nodes[r.0 as usize]
    }

    fn var_of(&self, r: BddRef) -> VarId {
        self.node(r).var
    }

    /// Creates (or finds) the reduced node `(var, low, high)`.
    fn mk_node(&mut self, var: VarId, low: BddRef, high: BddRef) -> BddRef {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&existing) = self.unique.get(&node) {
            return existing;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        let r = BddRef(idx);
        self.unique.insert(node, r);
        r
    }

    /// Logical AND (the provenance `*` / join operation).
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(BinOp::And, a, b)
    }

    /// Logical OR (the provenance `+` / union operation).
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(BinOp::Or, a, b)
    }

    /// Logical XOR.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.apply(BinOp::Xor, a, b)
    }

    /// Logical NOT.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        if let Some(&cached) = self.not_cache.get(&a) {
            return cached;
        }
        let result = match a {
            BddRef::FALSE => BddRef::TRUE,
            BddRef::TRUE => BddRef::FALSE,
            _ => {
                let n = self.node(a);
                let low = self.not(n.low);
                let high = self.not(n.high);
                self.mk_node(n.var, low, high)
            }
        };
        self.not_cache.insert(a, result);
        result
    }

    /// If-then-else: `cond ? then_b : else_b`.
    pub fn ite(&mut self, cond: BddRef, then_b: BddRef, else_b: BddRef) -> BddRef {
        // ite(c, t, e) = (c AND t) OR (NOT c AND e)
        let ct = self.and(cond, then_b);
        let nc = self.not(cond);
        let nce = self.and(nc, else_b);
        self.or(ct, nce)
    }

    fn apply(&mut self, op: BinOp, a: BddRef, b: BddRef) -> BddRef {
        // Terminal short-cuts.
        match op {
            BinOp::And => {
                if a == BddRef::FALSE || b == BddRef::FALSE {
                    return BddRef::FALSE;
                }
                if a == BddRef::TRUE {
                    return b;
                }
                if b == BddRef::TRUE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            BinOp::Or => {
                if a == BddRef::TRUE || b == BddRef::TRUE {
                    return BddRef::TRUE;
                }
                if a == BddRef::FALSE {
                    return b;
                }
                if b == BddRef::FALSE {
                    return a;
                }
                if a == b {
                    return a;
                }
            }
            BinOp::Xor => {
                if a == b {
                    return BddRef::FALSE;
                }
                if a == BddRef::FALSE {
                    return b;
                }
                if b == BddRef::FALSE {
                    return a;
                }
            }
        }
        // Canonicalise the commutative key so (a,b) and (b,a) share a slot.
        let key = if a <= b { (op, a, b) } else { (op, b, a) };
        if let Some(&cached) = self.apply_cache.get(&key) {
            return cached;
        }

        let va = self.var_of(a);
        let vb = self.var_of(b);
        let top = va.min(vb);
        let (a_low, a_high) = if va == top {
            let n = self.node(a);
            (n.low, n.high)
        } else {
            (a, a)
        };
        let (b_low, b_high) = if vb == top {
            let n = self.node(b);
            (n.low, n.high)
        } else {
            (b, b)
        };
        let low = self.apply(op, a_low, b_low);
        let high = self.apply(op, a_high, b_high);
        let result = self.mk_node(top, low, high);
        self.apply_cache.insert(key, result);
        result
    }

    /// Restricts variable `var` to `value` (cofactor).
    pub fn restrict(&mut self, f: BddRef, var: VarId, value: bool) -> BddRef {
        if Self::is_terminal(f) {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if n.var == var {
            return if value { n.high } else { n.low };
        }
        let low = self.restrict(n.low, var, value);
        let high = self.restrict(n.high, var, value);
        self.mk_node(n.var, low, high)
    }

    /// Existential quantification over `var`: `f[var:=0] OR f[var:=1]`.
    pub fn exists(&mut self, f: BddRef, var: VarId) -> BddRef {
        let lo = self.restrict(f, var, false);
        let hi = self.restrict(f, var, true);
        self.or(lo, hi)
    }

    /// Universal quantification over `var`: `f[var:=0] AND f[var:=1]`.
    pub fn forall(&mut self, f: BddRef, var: VarId) -> BddRef {
        let lo = self.restrict(f, var, false);
        let hi = self.restrict(f, var, true);
        self.and(lo, hi)
    }

    /// Evaluates `f` under a (total) assignment: `assignment(v)` gives the
    /// value of variable `v`.
    pub fn evaluate<F: Fn(VarId) -> bool>(&self, f: BddRef, assignment: F) -> bool {
        let mut cur = f;
        loop {
            match cur {
                BddRef::FALSE => return false,
                BddRef::TRUE => return true,
                _ => {
                    let n = self.node(cur);
                    cur = if assignment(n.var) { n.high } else { n.low };
                }
            }
        }
    }

    /// Set of variables the function actually depends on (its *support*).
    ///
    /// For condensed provenance this is the set of base tuples / principals
    /// that matter for trust decisions — `a + a*b` has support `{a}`.
    pub fn support(&self, f: BddRef) -> Vec<VarId> {
        let mut vars = Vec::new();
        let mut stack = vec![f];
        let mut seen = std::collections::HashSet::new();
        while let Some(r) = stack.pop() {
            if Self::is_terminal(r) || !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            if !vars.contains(&n.var) {
                vars.push(n.var);
            }
            stack.push(n.low);
            stack.push(n.high);
        }
        vars.sort_unstable();
        vars
    }

    /// Number of distinct decision nodes reachable from `f` (a size measure
    /// for storage-overhead experiments).
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0usize;
        while let Some(r) = stack.pop() {
            if Self::is_terminal(r) || !seen.insert(r) {
                continue;
            }
            count += 1;
            let n = self.node(r);
            stack.push(n.low);
            stack.push(n.high);
        }
        count
    }

    /// Number of satisfying assignments over the given variable universe
    /// (`num_vars` must be at least the largest variable in `f`'s support
    /// plus one).  Returns `None` on overflow.
    pub fn sat_count(&self, f: BddRef, num_vars: u32) -> Option<u128> {
        fn rec(
            mgr: &BddManager,
            f: BddRef,
            num_vars: u32,
            memo: &mut HashMap<BddRef, u128>,
        ) -> Option<u128> {
            match f {
                BddRef::FALSE => Some(0),
                BddRef::TRUE => 1u128.checked_shl(num_vars),
                _ => {
                    if let Some(&v) = memo.get(&f) {
                        return Some(v);
                    }
                    let n = mgr.node(f);
                    // Count over the remaining variables below this node's level,
                    // then scale by the variables skipped above it.  We compute
                    // counts as if the node were at level 0 of the remaining
                    // space and divide evenly: simpler is to count satisfying
                    // assignments over all `num_vars` variables directly by
                    // treating skipped levels as free.
                    let low = rec(mgr, n.low, num_vars, memo)?;
                    let high = rec(mgr, n.high, num_vars, memo)?;
                    // Each branch fixes one variable, halving the free space.
                    let v = low.checked_add(high)?.checked_div(2)?;
                    memo.insert(f, v);
                    Some(v)
                }
            }
        }
        if num_vars >= 128 {
            return None;
        }
        let support = self.support(f);
        if let Some(&max_var) = support.iter().max() {
            assert!(
                max_var < num_vars,
                "num_vars={num_vars} does not cover variable {max_var}"
            );
        }
        rec(self, f, num_vars, &mut HashMap::new())
    }

    /// Returns one satisfying assignment as `(var, value)` pairs for the
    /// variables on the chosen path (other variables are "don't care"), or
    /// `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: BddRef) -> Option<Vec<(VarId, bool)>> {
        if f == BddRef::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !Self::is_terminal(cur) {
            let n = self.node(cur);
            if n.high != BddRef::FALSE {
                path.push((n.var, true));
                cur = n.high;
            } else {
                path.push((n.var, false));
                cur = n.low;
            }
        }
        debug_assert_eq!(cur, BddRef::TRUE);
        Some(path)
    }

    /// Enumerates all prime-implicant-style cubes of `f` as sorted variable
    /// lists (positive literals only appear on `true` branches, negative on
    /// `false`).  Used to render condensed provenance back into a `+`/`*`
    /// expression for display; bounded by `limit` cubes.
    pub fn cubes(&self, f: BddRef, limit: usize) -> Vec<Vec<(VarId, bool)>> {
        let mut out = Vec::new();
        let mut stack: Vec<(BddRef, Vec<(VarId, bool)>)> = vec![(f, Vec::new())];
        while let Some((r, prefix)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            match r {
                BddRef::FALSE => {}
                BddRef::TRUE => out.push(prefix),
                _ => {
                    let n = self.node(r);
                    let mut low_prefix = prefix.clone();
                    low_prefix.push((n.var, false));
                    let mut high_prefix = prefix;
                    high_prefix.push((n.var, true));
                    stack.push((n.low, low_prefix));
                    stack.push((n.high, high_prefix));
                }
            }
        }
        out
    }

    /// Drops the operation caches (node storage is retained so existing
    /// references stay valid).
    pub fn clear_caches(&mut self) {
        self.apply_cache.clear();
        self.not_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut m = BddManager::new();
        assert_eq!(m.node_count(), 2);
        let a = m.var(0);
        assert_ne!(a, BddRef::FALSE);
        assert_ne!(a, BddRef::TRUE);
        // Hash-consing: asking again returns the same node.
        assert_eq!(m.var(0), a);
        assert_eq!(m.node_count(), 3);
    }

    #[test]
    fn basic_identities() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let t = m.true_ref();
        let f = m.false_ref();

        assert_eq!(m.and(a, t), a);
        assert_eq!(m.and(a, f), f);
        assert_eq!(m.or(a, f), a);
        assert_eq!(m.or(a, t), t);
        assert_eq!(m.and(a, a), a);
        assert_eq!(m.or(a, a), a);
        assert_eq!(m.xor(a, a), f);
        assert_eq!(m.xor(a, f), a);

        let not_a = m.not(a);
        assert_eq!(m.and(a, not_a), f);
        assert_eq!(m.or(a, not_a), t);
        assert_eq!(m.not(not_a), a);

        // Commutativity through hash-consing.
        assert_eq!(m.and(a, b), m.and(b, a));
        assert_eq!(m.or(a, b), m.or(b, a));
    }

    #[test]
    fn absorption_condenses_provenance_expression() {
        // The paper's Figure 2 example: <a + a*b> condenses to <a>.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let expr = m.or(a, ab);
        assert_eq!(expr, a);
        assert_eq!(m.support(expr), vec![0]);
    }

    #[test]
    fn distributivity_and_de_morgan() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);

        let bc = m.or(b, c);
        let lhs = m.and(a, bc);
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let rhs = m.or(ab, ac);
        assert_eq!(lhs, rhs);

        let ab_or = m.or(a, b);
        let lhs = m.not(ab_or);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.and(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ite_matches_definition() {
        let mut m = BddManager::new();
        let c = m.var(0);
        let t = m.var(1);
        let e = m.var(2);
        let ite = m.ite(c, t, e);
        for mask in 0..8u32 {
            let assignment = |v: VarId| (mask >> v) & 1 == 1;
            let expected = if assignment(0) {
                assignment(1)
            } else {
                assignment(2)
            };
            assert_eq!(m.evaluate(ite, assignment), expected, "mask {mask}");
        }
    }

    #[test]
    fn restrict_and_quantification() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);

        assert_eq!(m.restrict(f, 0, true), b);
        assert_eq!(m.restrict(f, 0, false), BddRef::FALSE);
        assert_eq!(
            m.restrict(f, 5, true),
            f,
            "restricting an absent variable is a no-op"
        );

        // exists a. (a AND b) == b ; forall a. (a AND b) == false
        assert_eq!(m.exists(f, 0), b);
        assert_eq!(m.forall(f, 0), BddRef::FALSE);

        let g = m.or(a, b);
        assert_eq!(m.forall(g, 0), b);
        assert_eq!(m.exists(g, 0), BddRef::TRUE);
    }

    #[test]
    fn sat_count_small_functions() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.sat_count(f, 2), Some(1));
        let g = m.or(a, b);
        assert_eq!(m.sat_count(g, 2), Some(3));
        assert_eq!(m.sat_count(BddRef::TRUE, 3), Some(8));
        assert_eq!(m.sat_count(BddRef::FALSE, 3), Some(0));
        // Extra don't-care variables double the count.
        assert_eq!(m.sat_count(f, 3), Some(2));
    }

    #[test]
    fn any_sat_returns_a_model() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let nb = m.not(b);
        let f = m.and(a, nb);
        let model = m.any_sat(f).unwrap();
        let assignment = |v: VarId| {
            model
                .iter()
                .find(|(mv, _)| *mv == v)
                .map(|(_, val)| *val)
                .unwrap_or(false)
        };
        assert!(m.evaluate(f, assignment));
        assert!(m.any_sat(BddRef::FALSE).is_none());
        assert_eq!(m.any_sat(BddRef::TRUE), Some(vec![]));
    }

    #[test]
    fn support_and_size() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let c = m.var(2);
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![0, 2]);
        assert!(m.size(f) >= 2);
        assert_eq!(m.size(BddRef::TRUE), 0);
        assert_eq!(m.support(BddRef::FALSE), Vec::<VarId>::new());
    }

    #[test]
    fn cubes_enumerate_dnf() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        let cubes = m.cubes(f, 10);
        // Every cube must satisfy f.
        for cube in &cubes {
            let assignment = |v: VarId| {
                cube.iter()
                    .find(|(cv, _)| *cv == v)
                    .map(|(_, val)| *val)
                    .unwrap_or(false)
            };
            assert!(m.evaluate(f, assignment));
        }
        assert!(!cubes.is_empty());
        // Limit is respected.
        assert_eq!(m.cubes(f, 1).len(), 1);
    }

    #[test]
    fn evaluate_agrees_with_truth_table_for_random_formulas() {
        // Build a moderately complex formula and cross-check against direct
        // boolean evaluation.
        let mut m = BddManager::new();
        let vars: Vec<BddRef> = (0..4).map(|i| m.var(i)).collect();
        // f = (x0 & x1) | (x2 ^ x3) & ~x0
        let x01 = m.and(vars[0], vars[1]);
        let x23 = m.xor(vars[2], vars[3]);
        let n0 = m.not(vars[0]);
        let right = m.and(x23, n0);
        let f = m.or(x01, right);
        for mask in 0..16u32 {
            let a = |v: VarId| (mask >> v) & 1 == 1;
            let expected = (a(0) && a(1)) || ((a(2) ^ a(3)) && !a(0));
            assert_eq!(m.evaluate(f, a), expected, "mask {mask}");
        }
    }

    #[test]
    fn clear_caches_preserves_semantics() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        m.clear_caches();
        let f2 = m.and(a, b);
        assert_eq!(f1, f2);
    }
}
