//! Ablation: the cost of the three `says` strength levels (Section 2.2).
//!
//! "In a hostile world, says may require digital signatures, while in a more
//! benign world, says may simply append a cleartext principal header to a
//! message — and this will of course be cheaper."  This bench quantifies that
//! spectrum: cleartext vs HMAC vs RSA authentication of the same reachability
//! workload, reporting both wall-clock and the per-variant simulated cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn::prelude::*;
use pasn_bench::reachability_network;
use pasn_crypto::says::SaysLevel;
use std::time::Duration;

fn says_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_says_levels");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let n = 20u32;
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("none", EngineConfig::ndlog()),
        (
            "cleartext",
            EngineConfig::ndlog().with_says(SaysLevel::Cleartext),
        ),
        ("hmac", EngineConfig::ndlog().with_says(SaysLevel::Hmac)),
        (
            "session",
            EngineConfig::ndlog().with_says(SaysLevel::Session),
        ),
        ("rsa", EngineConfig::ndlog().with_says(SaysLevel::Rsa)),
    ];

    for (name, config) in &configs {
        let mut probe = reachability_network(n, config.clone(), 5);
        let metrics = probe.run().expect("fixpoint");
        println!(
            "says ablation: {name:>9} completion={:.2}s bandwidth={:.3}MB auth_bytes={}",
            metrics.completion_secs(),
            metrics.megabytes(),
            metrics.auth_bytes
        );
        group.bench_with_input(BenchmarkId::new("level", *name), config, |b, config| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 5);
                net.run().expect("fixpoint").completion_secs()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, says_levels);
criterion_main!(benches);
