//! Figure 3 — query completion time (s) of the Best-Path query for NDLog,
//! SeNDLog and SeNDLogProv as the network size N grows.
//!
//! The Criterion measurement here is the wall-clock cost of driving one
//! deployment to its distributed fixpoint (which includes the real signature
//! and provenance work); the *figure itself* — simulated completion seconds
//! per (N, variant) — is printed once per point and regenerated in full by
//! `cargo run --release -p pasn-bench --bin repro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn::prelude::*;
use pasn_bench::best_path_network;
use std::time::Duration;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_completion_time");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));

    for &n in &[10u32, 20] {
        for variant in SystemVariant::ALL {
            // Report the figure's y-value (simulated seconds) once.
            let mut probe = best_path_network(n, variant, 42);
            let metrics = probe.run().expect("fixpoint");
            println!(
                "fig3 point: N={n} {} completion={:.2}s bandwidth={:.3}MB",
                variant.name(),
                metrics.completion_secs(),
                metrics.megabytes()
            );

            group.bench_with_input(
                BenchmarkId::new(variant.name(), n),
                &(n, variant),
                |b, &(n, variant)| {
                    b.iter(|| {
                        let mut net = best_path_network(n, variant, 42);
                        net.run().expect("fixpoint").completion_secs()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
