//! Overlay benchmark: secure Chord lookups (the paper's future-work
//! overlay).
//!
//! Measures how lookup latency scales with ring size (hop counts grow
//! logarithmically) and what each `says` level adds per lookup — the same
//! authentication-cost axis Figure 3 measures for the routing workload,
//! applied to overlay routing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn_crypto::SaysLevel;
use pasn_overlay::chord::{ChordConfig, ChordRing};
use std::time::Duration;

fn build(nodes: u32, level: SaysLevel) -> ChordRing {
    ChordRing::build(ChordConfig {
        nodes,
        bits: 24,
        says_level: level,
        modulus_bits: 512,
        seed: 7,
        successor_list_len: 3,
    })
    .expect("ring builds")
}

fn chord(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_chord");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    // Hop scaling: lookups on rings of increasing size (cleartext assertions
    // so the measurement isolates routing work).
    for &n in &[8u32, 32, 64] {
        let ring = build(n, SaysLevel::Cleartext);
        let (avg, max) = ring.lookup_hop_stats(64).expect("stats");
        println!("overlay_chord: N={n} avg hops {avg:.2}, max hops {max}");
        let origin = ring.node_ids()[0];
        group.bench_with_input(BenchmarkId::new("lookup", n), &n, |b, _| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = ring.space().key_id(&format!("bench-key-{i}"));
                ring.lookup(origin, key).expect("lookup").hop_count()
            })
        });
    }

    // Authentication cost per lookup+verify at each single-shot `says`
    // level.  `Session` is excluded: chord hops assert individual
    // statements, not link frames, and session proofs only exist on an
    // established channel (see `pasn_crypto::channel` / `crypto_says`).
    for level in [SaysLevel::Cleartext, SaysLevel::Hmac, SaysLevel::Rsa] {
        let ring = build(16, level);
        let origin = ring.node_ids()[0];
        let key = ring.space().key_id("auth-cost");
        group.bench_with_input(
            BenchmarkId::new("lookup_verify", level.name()),
            &level,
            |b, _| {
                b.iter(|| {
                    let trace = ring.lookup(origin, key).expect("lookup");
                    ring.verify_lookup(&trace).expect("verifies");
                    trace.hop_count()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, chord);
criterion_main!(benches);
