//! Soft-state store churn: insert / expire / re-insert cycles over the
//! seq-addressed shared-row layout.
//!
//! Exercises the paths the `engine_fixpoint` joins do not: TTL expiry in
//! global seq order, lazy seq-list compaction under heavy removal, and
//! index maintenance across generations of the same keys.  The `repro`
//! binary records the same workload into `BENCH_engine.json` so the cost of
//! churn is part of the cross-PR perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn_bench::store_churn_cycle;

fn store_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_churn");
    group.sample_size(10);

    group.bench_function("insert_expire_reinsert_10k", |b| {
        b.iter(|| store_churn_cycle(10_000).total_tuples())
    });
    group.bench_function("scan_ordered_after_churn_10k", |b| {
        let store = store_churn_cycle(10_000);
        b.iter(|| store.scan_ordered("flow").len())
    });
    group.finish();
}

criterion_group!(benches, store_churn);
criterion_main!(benches);
