//! Ablation: sampled provenance (Section 5, "Sampling").
//!
//! Two knobs are measured: recording only a fraction of derivations
//! (`SamplingPolicy::one_in(k)`, the IP-traceback 1-in-20,000 analogue) and
//! querying provenance by random moonwalks instead of exhaustive traceback.
//! Both trade accuracy for storage / query cost; the bench reports the cost
//! side, the integration tests (`tests/moonwalk_forensics.rs`) check the
//! accuracy side.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn::prelude::*;
use pasn_bench::reachability_network;
use pasn_provenance::{moonwalk, traceback, MoonwalkConfig, SamplingPolicy};
use std::time::Duration;

fn sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sampling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let n = 15u32;

    // Recording cost: how much provenance each node stores as the sampling
    // rate drops.
    for (name, policy) in [
        ("record/always", SamplingPolicy::always()),
        ("record/one-in-4", SamplingPolicy::one_in(4)),
        ("record/one-in-16", SamplingPolicy::one_in(16)),
    ] {
        let mut config = EngineConfig::ndlog().with_graph_mode(GraphMode::Distributed);
        config.sampling = policy;
        let mut probe = reachability_network(n, config.clone(), 5);
        probe.run().expect("fixpoint");
        let entries: usize = probe
            .distributed_stores()
            .values()
            .map(|s| s.entry_count())
            .sum();
        println!("sampling ablation: {name:>18} stores {entries} pointer records");
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 5);
                net.run().expect("fixpoint");
                net.distributed_stores()
                    .values()
                    .map(|s| s.entry_count())
                    .sum::<usize>()
            })
        });
    }

    // Query cost: exhaustive traceback vs random moonwalks over the same
    // distributed stores.
    let mut net = reachability_network(
        n,
        EngineConfig::ndlog().with_graph_mode(GraphMode::Distributed),
        5,
    );
    net.run().expect("fixpoint");
    let stores = net.distributed_stores();
    let target = "reachable(@n0,n5)";

    let full = traceback(&stores, "n0", target);
    let sampled = moonwalk(&stores, "n0", target, &MoonwalkConfig::with_walks(32));
    println!(
        "sampling ablation: traceback reads {} records, 32 moonwalks read {} ({} origins found)",
        full.visited.len(),
        sampled.records_read,
        sampled.base_frequency.len()
    );

    group.bench_function("query/traceback", |b| {
        b.iter(|| traceback(&stores, "n0", target).base_tuples.len())
    });
    for walks in [8usize, 32, 128] {
        group.bench_function(format!("query/moonwalk-{walks}"), |b| {
            let config = MoonwalkConfig::with_walks(walks);
            b.iter(|| moonwalk(&stores, "n0", target, &config).records_read)
        });
    }

    group.finish();
}

criterion_group!(benches, sampling);
criterion_main!(benches);
