//! Ablation: proactive vs reactive provenance (Section 5, "Proactive vs
//! reactive provenance").
//!
//! Proactive maintenance pays for every derivation's provenance during the
//! run; reactive maintenance defers the work until a network event (a
//! diagnosis, a forensic query) asks for it.  The bench measures both the
//! run-time cost of each mode and the deferred materialisation cost the
//! reactive mode pays later.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn::prelude::*;
use pasn_bench::reachability_network;
use pasn_provenance::MaintenanceMode;
use std::time::Duration;

fn maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_maintenance");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let n = 15u32;
    let base = EngineConfig::ndlog().with_graph_mode(GraphMode::Local);

    for (name, mode) in [
        ("proactive", MaintenanceMode::Proactive),
        ("reactive", MaintenanceMode::Reactive),
    ] {
        let mut config = base.clone();
        config.maintenance = mode;

        let mut probe = reachability_network(n, config.clone(), 13);
        let metrics = probe.run().expect("fixpoint");
        let eager_nodes: usize = probe
            .engine()
            .locations()
            .iter()
            .filter_map(|l| probe.provenance_graph(l))
            .map(|g| g.len())
            .sum();
        println!(
            "maintenance ablation: {name:>9} run prov_bytes={} eager graph nodes={}",
            metrics.provenance_bytes, eager_nodes
        );

        // Cost during the run.
        group.bench_function(format!("run/{name}"), |b| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 13);
                net.run().expect("fixpoint").provenance_bytes
            })
        });

        // Deferred cost: reactive deployments materialise provenance only
        // when an event demands it.
        group.bench_function(format!("run-then-materialize/{name}"), |b| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 13);
                net.run().expect("fixpoint");
                net.engine_mut().materialize_provenance()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, maintenance);
criterion_main!(benches);
