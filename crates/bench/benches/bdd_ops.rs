//! Microbenchmarks of the BDD package on provenance-shaped expressions:
//! building condensed provenance incrementally (`or` of `and`-chains, as the
//! engine does per derivation) and rendering the canonical annotation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn_bdd::{BddManager, BoolExpr};
use std::time::Duration;

/// Builds a provenance function with `alternatives` derivations each joining
/// `width` principals (with overlap, so absorption has work to do).
fn provenance_function(m: &mut BddManager, alternatives: u32, width: u32) -> pasn_bdd::BddRef {
    let mut acc = m.false_ref();
    for alt in 0..alternatives {
        let mut product = m.true_ref();
        for k in 0..width {
            let var = m.var(alt + k); // consecutive alternatives share vars
            product = m.and(product, var);
        }
        acc = m.or(acc, product);
    }
    acc
}

fn bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_ops");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));

    for (alternatives, width) in [(4u32, 3u32), (16, 4), (64, 5)] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("{alternatives}x{width}")),
            &(alternatives, width),
            |b, &(alternatives, width)| {
                b.iter(|| {
                    let mut m = BddManager::new();
                    provenance_function(&mut m, alternatives, width)
                })
            },
        );
    }

    group.bench_function("condense_paper_example", |b| {
        b.iter(|| {
            let mut m = BddManager::new();
            let a = m.var(0);
            let bb = m.var(1);
            let ab = m.and(a, bb);
            let expr = m.or(a, ab);
            assert_eq!(expr, a);
        })
    });

    group.bench_function("render_monotone/16x4", |b| {
        let mut m = BddManager::new();
        let f = provenance_function(&mut m, 16, 4);
        b.iter(|| BoolExpr::monotone_from_bdd(&m, f))
    });

    group.finish();
}

criterion_group!(benches, bdd);
criterion_main!(benches);
