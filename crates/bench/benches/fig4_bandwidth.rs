//! Figure 4 — bandwidth utilization (MB) of the Best-Path query for NDLog,
//! SeNDLog and SeNDLogProv as the network size N grows.
//!
//! Bandwidth is deterministic for a given topology seed, so the bench prints
//! the figure values and measures the cost of the full run that produces
//! them (tuple encoding, proof generation and provenance annotation sizing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn::prelude::*;
use pasn_bench::best_path_network;
use std::time::Duration;

fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_bandwidth");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_secs(1));

    for &n in &[10u32, 20] {
        for variant in SystemVariant::ALL {
            let mut probe = best_path_network(n, variant, 42);
            let metrics = probe.run().expect("fixpoint");
            println!(
                "fig4 point: N={n} {} bandwidth={:.3}MB messages={} auth_bytes={} prov_bytes={}",
                variant.name(),
                metrics.megabytes(),
                metrics.messages,
                metrics.auth_bytes,
                metrics.provenance_bytes
            );

            group.bench_with_input(
                BenchmarkId::new(variant.name(), n),
                &(n, variant),
                |b, &(n, variant)| {
                    b.iter(|| {
                        let mut net = best_path_network(n, variant, 42);
                        net.run().expect("fixpoint").megabytes()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig4);
criterion_main!(benches);
