//! Microbenchmarks of the cryptographic substrate: SHA-256, HMAC and RSA
//! sign/verify.  The sign/verify ratio is what makes the SeNDLog overhead of
//! Figure 3 asymmetric between the sending and receiving side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasn_crypto::hmac::hmac_sha256;
use pasn_crypto::rsa::RsaKeyPair;
use pasn_crypto::sha256::sha256;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_primitives");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    // A typical exported tuple payload (bestPath with a 6-hop path vector).
    let payload = vec![0xa5u8; 96];

    for size in [64usize, 1024] {
        let data = vec![0x5au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| sha256(data))
        });
    }
    group.throughput(Throughput::Elements(1));
    group.bench_function("hmac_sha256/96B", |b| {
        let key = [7u8; 32];
        b.iter(|| hmac_sha256(&key, &payload))
    });

    let mut rng = StdRng::seed_from_u64(99);
    let kp512 = RsaKeyPair::generate(512, &mut rng).unwrap();
    let sig = kp512.sign(&payload);
    group.bench_function("rsa512_sign/96B", |b| b.iter(|| kp512.sign(&payload)));
    group.bench_function("rsa512_verify/96B", |b| {
        b.iter(|| assert!(kp512.verify(&payload, &sig)))
    });

    group.finish();
}

criterion_group!(benches, crypto);
criterion_main!(benches);
