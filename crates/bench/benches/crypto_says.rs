//! Microbenchmark of the `says` layer itself: what one shipment frame costs
//! to assert and verify at each strength level — cleartext header, HMAC,
//! per-frame RSA, and the session channel that amortises RSA down to one
//! handshake per link.
//!
//! The `session/*` pairs make the tentpole trade visible in isolation: the
//! `handshake` pair is the once-per-link RSA cost, the steady-state
//! `mac_frame`/`verify_frame` pair is what every subsequent frame pays —
//! orders of magnitude below `rsa/assert_frame`.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn_crypto::principal::{KeyAuthority, Principal, PrincipalId};
use pasn_crypto::says::{Authenticator, SaysLevel};
use std::time::Duration;

/// A typical five-tuple shipment frame (reachability tuples).
fn frame_tuples() -> Vec<Vec<u8>> {
    (0..5)
        .map(|i| format!("reachable(n{i},n{})", i + 7).into_bytes())
        .collect()
}

fn says_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_says");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    let principals = vec![Principal::new(0u32, "a"), Principal::new(1u32, "b")];
    let authority = KeyAuthority::provision(&principals, 42).unwrap();
    let tuples = frame_tuples();

    for level in [SaysLevel::Cleartext, SaysLevel::Hmac, SaysLevel::Rsa] {
        let a = Authenticator::new(authority.keyring_for(PrincipalId(0)).unwrap(), level);
        let b = Authenticator::new(authority.keyring_for(PrincipalId(1)).unwrap(), level);
        let assertion = a.assert_frame(&tuples);
        group.bench_function(format!("{}/assert_frame", level.name()), |bench| {
            bench.iter(|| a.assert_frame(&tuples))
        });
        group.bench_function(format!("{}/verify_frame", level.name()), |bench| {
            bench.iter(|| b.verify_frame(&tuples, &assertion).is_ok())
        });
    }

    // Session channel: the RSA handshake is paid once per link, then every
    // frame costs one MAC on each side.
    let a = Authenticator::new(
        authority.keyring_for(PrincipalId(0)).unwrap(),
        SaysLevel::Session,
    );
    let b = Authenticator::new(
        authority.keyring_for(PrincipalId(1)).unwrap(),
        SaysLevel::Session,
    );
    group.bench_function("session-channel/handshake", |bench| {
        bench.iter(|| {
            let (handshake, _) = a.open_channel(PrincipalId(1), 0, u64::MAX);
            b.accept_channel(&handshake).unwrap()
        })
    });
    let (handshake, mut tx) = a.open_channel(PrincipalId(1), 0, u64::MAX);
    let rx = b.accept_channel(&handshake).unwrap();
    group.bench_function("session-channel/mac_frame", |bench| {
        bench.iter(|| a.assert_frame_on(&mut tx, &tuples))
    });
    let assertion = a.assert_frame_on(&mut tx, &tuples);
    group.bench_function("session-channel/verify_frame", |bench| {
        bench.iter(|| {
            // A fresh receiver state per iteration (a trivial copy) keeps
            // the replay counter satisfied while measuring verification
            // alone, comparable to the other levels' verify_frame numbers.
            let mut rx = rx.clone();
            b.verify_frame_on(&mut rx, &tuples, &assertion, SaysLevel::Session)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, says_levels);
criterion_main!(benches);
