//! Microbenchmark of the `says` layer itself: what one shipment frame costs
//! to assert and verify at each strength level — cleartext header, HMAC,
//! per-frame RSA, and the session channel that amortises RSA down to one
//! handshake per link.
//!
//! The `session/*` pairs make the tentpole trade visible in isolation: the
//! `handshake` pair is the once-per-link RSA cost, the steady-state
//! `mac_frame`/`verify_frame` pair is what every subsequent frame pays —
//! orders of magnitude below `rsa/assert_frame`.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn_crypto::bigint::{BigUint, MontgomeryCtx};
use pasn_crypto::principal::{KeyAuthority, Principal, PrincipalId};
use pasn_crypto::rsa::RsaKeyPair;
use pasn_crypto::says::{Authenticator, SaysLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A typical five-tuple shipment frame (reachability tuples).
fn frame_tuples() -> Vec<Vec<u8>> {
    (0..5)
        .map(|i| format!("reachable(n{i},n{})", i + 7).into_bytes())
        .collect()
}

fn says_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_says");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    let principals = vec![Principal::new(0u32, "a"), Principal::new(1u32, "b")];
    let authority = KeyAuthority::provision(&principals, 42).unwrap();
    let tuples = frame_tuples();

    for level in [SaysLevel::Cleartext, SaysLevel::Hmac, SaysLevel::Rsa] {
        let a = Authenticator::new(authority.keyring_for(PrincipalId(0)).unwrap(), level);
        let b = Authenticator::new(authority.keyring_for(PrincipalId(1)).unwrap(), level);
        let assertion = a.assert_frame(&tuples);
        group.bench_function(format!("{}/assert_frame", level.name()), |bench| {
            bench.iter(|| a.assert_frame(&tuples))
        });
        group.bench_function(format!("{}/verify_frame", level.name()), |bench| {
            bench.iter(|| b.verify_frame(&tuples, &assertion).is_ok())
        });
    }

    // Session channel: the RSA handshake is paid once per link, then every
    // frame costs one MAC on each side.
    let a = Authenticator::new(
        authority.keyring_for(PrincipalId(0)).unwrap(),
        SaysLevel::Session,
    );
    let b = Authenticator::new(
        authority.keyring_for(PrincipalId(1)).unwrap(),
        SaysLevel::Session,
    );
    group.bench_function("session-channel/handshake", |bench| {
        bench.iter(|| {
            let (handshake, _) = a.open_channel(PrincipalId(1), 0, u64::MAX);
            b.accept_channel(&handshake).unwrap()
        })
    });
    let (handshake, mut tx) = a.open_channel(PrincipalId(1), 0, u64::MAX);
    let rx = b.accept_channel(&handshake).unwrap();
    group.bench_function("session-channel/mac_frame", |bench| {
        bench.iter(|| a.assert_frame_on(&mut tx, &tuples))
    });
    let assertion = a.assert_frame_on(&mut tx, &tuples);
    group.bench_function("session-channel/verify_frame", |bench| {
        bench.iter(|| {
            // A fresh receiver state per iteration (a trivial copy) keeps
            // the replay counter satisfied while measuring verification
            // alone, comparable to the other levels' verify_frame numbers.
            let mut rx = rx.clone();
            b.verify_frame_on(&mut rx, &tuples, &assertion, SaysLevel::Session)
                .unwrap()
        })
    });
    group.finish();
}

/// The RSA hot path in isolation: CRT signing (two half-width
/// exponentiations + Garner recombination) against the classic full-width
/// reference, the fixed-window modular exponentiation against its binary
/// predecessor, and what one seeded 512-bit keygen costs (Miller–Rabin
/// dominates — the number that matters for the 10k-node scale item).
fn rsa_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto_says");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));

    let mut rng = StdRng::seed_from_u64(1234);
    let kp = RsaKeyPair::generate(512, &mut rng).unwrap();
    let message = b"reachable(a,c) asserted by a";
    group.bench_function("sign/crt", |bench| bench.iter(|| kp.sign(message)));
    group.bench_function("sign/full-width", |bench| {
        bench.iter(|| kp.sign_classic(message))
    });

    // A full-width exponentiation over the keypair's modulus with a
    // full-size exponent — the exact shape a classic private-key operation
    // exercises, window vs binary.
    let ctx = MontgomeryCtx::new(kp.public_key().modulus()).unwrap();
    let base = BigUint::from_bytes_be(&kp.sign(message));
    let exponent = BigUint::random_with_bits(512, &mut rng);
    group.bench_function("mod_pow/window", |bench| {
        bench.iter(|| ctx.mod_pow(&base, &exponent))
    });
    group.bench_function("mod_pow/binary", |bench| {
        bench.iter(|| ctx.mod_pow_binary(&base, &exponent))
    });

    group.bench_function("keygen", |bench| {
        let mut seed = 0u64;
        bench.iter(|| {
            seed = seed.wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(seed);
            RsaKeyPair::generate(512, &mut rng).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, says_levels, rsa_hot_path);
criterion_main!(benches);
