//! Ablation: provenance granularity (Section 5, "Provenance granularity").
//!
//! Aggregating provenance to the AS level collapses many principals into one
//! provenance variable, shrinking the condensed expressions (and with them
//! the shipped bytes) at the cost of only AS-level attribution.  The bench
//! runs the same deployment at node granularity and at several AS sizes and
//! reports the provenance footprint of each.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn::prelude::*;
use pasn_bench::reachability_network;
use pasn_provenance::Granularity;
use std::time::Duration;

fn granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_granularity");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let n = 16u32;
    let cases = [
        ("node", Granularity::Node),
        ("as-of-4", Granularity::uniform_as(n, 4)),
        ("as-of-8", Granularity::uniform_as(n, 8)),
    ];

    for (name, granularity) in cases {
        let mut config = EngineConfig::ndlog().with_provenance(ProvenanceKind::Condensed);
        config.granularity = granularity.clone();

        // Report the footprint once: distinct provenance variables and total
        // provenance bytes shipped.
        let mut probe = reachability_network(n, config.clone(), 9);
        let metrics = probe.run().expect("fixpoint");
        println!(
            "granularity ablation: {name:>8} distinct origins={} prov_bytes={}",
            probe.var_table().len(),
            metrics.provenance_bytes
        );

        group.bench_function(name, |b| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 9);
                net.run().expect("fixpoint").provenance_bytes
            })
        });
    }

    group.finish();
}

criterion_group!(benches, granularity);
criterion_main!(benches);
