//! Ablation: condensed (BDD) provenance vs uncondensed why-provenance
//! (Section 4.4).
//!
//! The paper argues that BDD-encoded condensed provenance keeps the per-tuple
//! annotation compact while retaining enough information for trust
//! enforcement.  This bench runs the same workload with (a) no provenance,
//! (b) condensed provenance and (c) full why-provenance, and reports the
//! provenance bytes shipped by each.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn::prelude::*;
use pasn_bench::reachability_network;
use std::time::Duration;

fn condensation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_condensation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let n = 20u32;
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("none", EngineConfig::ndlog()),
        (
            "condensed",
            EngineConfig::ndlog().with_provenance(ProvenanceKind::Condensed),
        ),
        (
            "why_uncondensed",
            EngineConfig::ndlog().with_provenance(ProvenanceKind::Why),
        ),
    ];

    for (name, config) in &configs {
        let mut probe = reachability_network(n, config.clone(), 5);
        let metrics = probe.run().expect("fixpoint");
        println!(
            "condensation ablation: {name:>16} prov_bytes={} total={:.3}MB completion={:.2}s",
            metrics.provenance_bytes,
            metrics.megabytes(),
            metrics.completion_secs()
        );
        group.bench_with_input(BenchmarkId::new("mode", *name), config, |b, config| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 5);
                net.run().expect("fixpoint").provenance_bytes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, condensation);
criterion_main!(benches);
