//! Ablation: local vs distributed provenance (Section 4.1).
//!
//! Local provenance piggybacks the full derivation subtree on every shipped
//! tuple (expensive to maintain, cheap to query); distributed provenance only
//! stores per-node pointers (free to ship, but a traceback query must cross
//! node boundaries).  This bench measures both the maintenance cost and the
//! query cost of the two configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use pasn::prelude::*;
use pasn_bench::reachability_network;
use pasn_provenance::traceback;
use std::time::Duration;

fn local_vs_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_local_vs_distributed");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let n = 15u32;

    // Maintenance cost: run to fixpoint under each mode.
    for (name, mode) in [
        ("local", GraphMode::Local),
        ("distributed", GraphMode::Distributed),
    ] {
        let config = EngineConfig::ndlog().with_graph_mode(mode);
        let mut probe = reachability_network(n, config.clone(), 5);
        let metrics = probe.run().expect("fixpoint");
        println!(
            "local-vs-distributed: {name:>12} maintenance prov_bytes={} bandwidth={:.3}MB",
            metrics.provenance_bytes,
            metrics.megabytes()
        );
        group.bench_function(format!("maintain/{name}"), |b| {
            b.iter(|| {
                let mut net = reachability_network(n, config.clone(), 5);
                net.run().expect("fixpoint").provenance_bytes
            })
        });
    }

    // Query cost: local provenance answers from the node's own graph;
    // distributed provenance runs a multi-hop traceback.
    let mut local_net = reachability_network(
        n,
        EngineConfig::ndlog().with_graph_mode(GraphMode::Local),
        5,
    );
    local_net.run().expect("fixpoint");
    let target = "reachable(@n0,n5)";
    group.bench_function("query/local", |b| {
        let graph = local_net.provenance_graph(&Value::Addr(0)).unwrap();
        let root = graph.find(target).expect("derived");
        b.iter(|| graph.base_support(root).len())
    });

    let mut dist_net = reachability_network(
        n,
        EngineConfig::ndlog().with_graph_mode(GraphMode::Distributed),
        5,
    );
    dist_net.run().expect("fixpoint");
    let stores = dist_net.distributed_stores();
    let probe = traceback(&stores, "n0", target);
    println!(
        "local-vs-distributed: distributed query visits {} entries over {} remote hops",
        probe.visited.len(),
        probe.remote_hops
    );
    group.bench_function("query/distributed", |b| {
        b.iter(|| traceback(&stores, "n0", target).base_tuples.len())
    });

    group.finish();
}

criterion_group!(benches, local_vs_distributed);
criterion_main!(benches);
