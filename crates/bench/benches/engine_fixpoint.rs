//! Core engine throughput: reaching the distributed fixpoint of the
//! reachability and Best-Path queries without any security or provenance
//! machinery (the NDLog baseline that Figures 3 and 4 normalise against).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasn::prelude::*;
use pasn_bench::{best_path_network, reachability_network};
use std::time::Duration;

fn engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_fixpoint");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    for &n in &[10u32, 20, 40] {
        group.bench_with_input(BenchmarkId::new("reachability", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = reachability_network(n, EngineConfig::ndlog(), 7);
                net.run().expect("fixpoint").derivations
            })
        });
    }
    for &n in &[10u32, 20] {
        group.bench_with_input(BenchmarkId::new("best_path", n), &n, |b, &n| {
            b.iter(|| {
                let mut net = best_path_network(n, SystemVariant::NDLog, 7);
                net.run().expect("fixpoint").derivations
            })
        });
    }
    // A ≥1k-tuple equijoin: the workload where secondary indexes dominate.
    // `indexed_join` probes the (predicate, key-columns) hash indexes;
    // `scan_join` is the same workload forced onto the pre-index full-scan
    // strategy for comparison.
    {
        let &n = &1_000u32;
        group.bench_with_input(BenchmarkId::new("indexed_join", n), &n, |b, &n| {
            b.iter(|| {
                let config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
                let mut engine = pasn_bench::equijoin_engine(n, config);
                engine.run_to_fixpoint().expect("fixpoint").derivations
            })
        });
        group.bench_with_input(BenchmarkId::new("scan_join", n), &n, |b, &n| {
            b.iter(|| {
                let config = EngineConfig::ndlog()
                    .with_cost_model(CostModel::zero_cpu())
                    .without_secondary_indexes();
                let mut engine = pasn_bench::equijoin_engine(n, config);
                engine.run_to_fixpoint().expect("fixpoint").derivations
            })
        });
    }
    group.finish();
}

criterion_group!(benches, engine);
criterion_main!(benches);
