//! # pasn-bench
//!
//! Benchmark support for the *Provenance-aware Secure Networks*
//! reproduction: shared helpers used by the Criterion benches (one per
//! figure/ablation) and by the `repro` binary that regenerates every figure
//! of the paper's evaluation section plus the EXPERIMENTS.md tables.

#![forbid(unsafe_code)]

use pasn::prelude::*;
use pasn::workload;

/// Builds a ready-to-run Best-Path deployment for one (N, variant) point of
/// the evaluation sweep.
pub fn best_path_network(n: u32, variant: SystemVariant, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology)
        .config(variant.config())
        .build()
        .expect("the Best-Path program compiles")
}

/// Builds a reachability deployment (used by the smaller ablation benches).
pub fn reachability_network(n: u32, config: EngineConfig, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

/// Builds a single-node equijoin deployment with `rows` tuples in each of
/// two base relations sharing a key column: the canonical workload for the
/// secondary-index join path (`engine_fixpoint/indexed_join`).
///
/// Every arriving `a(@S,K,X)` delta joins `b(@S,K,Y)` on the bound prefix
/// `(S, K)` and vice versa, so the scan-based evaluation examines O(rows²)
/// candidate tuples while the indexed evaluation examines O(rows).  Keys are
/// distinct, producing exactly `rows` join results.
pub fn equijoin_engine(rows: u32, config: EngineConfig) -> pasn_engine::DistributedEngine {
    let program = pasn_datalog::parse_program("j1 m(@S,K,X,Y) :- a(@S,K,X), b(@S,K,Y).")
        .expect("the equijoin program parses");
    let location = Value::Addr(0);
    let mut engine =
        pasn_engine::DistributedEngine::new(&program, config, std::slice::from_ref(&location))
            .expect("the equijoin program compiles");
    for i in 0..rows {
        let k = Value::Int(i as i64);
        engine
            .insert_fact(
                location.clone(),
                Tuple::new(
                    "a",
                    vec![location.clone(), k.clone(), Value::Int(i as i64 * 2)],
                ),
            )
            .expect("known location");
        engine
            .insert_fact(
                location.clone(),
                Tuple::new("b", vec![location.clone(), k, Value::Int(i as i64 * 3)]),
            )
            .expect("known location");
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_runnable_networks() {
        let mut net = best_path_network(6, SystemVariant::NDLog, 1);
        let metrics = net.run().unwrap();
        assert!(metrics.messages > 0);
        let mut net = reachability_network(6, EngineConfig::ndlog(), 1);
        assert!(net.run().unwrap().messages > 0);
    }

    #[test]
    fn equijoin_workload_joins_through_the_index() {
        let config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
        let mut engine = equijoin_engine(64, config);
        let metrics = engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.query(&Value::Addr(0), "m").len(), 64);
        assert!(metrics.index_probes > 0);
        assert_eq!(metrics.scan_probes, 0);

        // The same workload with indexing disabled produces identical
        // results but examines quadratically more candidates.
        let scan_config = EngineConfig::ndlog()
            .with_cost_model(CostModel::zero_cpu())
            .without_secondary_indexes();
        let mut scan_engine = equijoin_engine(64, scan_config);
        let scan_metrics = scan_engine.run_to_fixpoint().unwrap();
        assert_eq!(scan_engine.query(&Value::Addr(0), "m").len(), 64);
        assert_eq!(scan_metrics.index_probes, 0);
        assert!(scan_metrics.scan_probes > metrics.index_hits * 10);
    }
}
