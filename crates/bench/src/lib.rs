//! # pasn-bench
//!
//! Benchmark support for the *Provenance-aware Secure Networks*
//! reproduction: shared helpers used by the Criterion benches (one per
//! figure/ablation) and by the `repro` binary that regenerates every figure
//! of the paper's evaluation section plus the EXPERIMENTS.md tables.

#![forbid(unsafe_code)]

use pasn::prelude::*;
use pasn::workload;

/// Builds a ready-to-run Best-Path deployment for one (N, variant) point of
/// the evaluation sweep.
pub fn best_path_network(n: u32, variant: SystemVariant, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology)
        .config(variant.config())
        .build()
        .expect("the Best-Path program compiles")
}

/// Builds a reachability deployment (used by the smaller ablation benches).
pub fn reachability_network(n: u32, config: EngineConfig, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

/// Builds the parallel-evaluation workload: `clusters` disjoint clusters of
/// `cluster_size` nodes, each wired as a directed ring plus a fixed-offset
/// chord, running the NDLog reachability program.
///
/// The clusters are mutually unreachable, so the fixpoint is `clusters`
/// independent transitive closures — embarrassingly parallel work whose
/// node ids interleave across the `node_id % workers` partition map,
/// keeping every partition of the worker pool busy in each wave.  The
/// per-cluster reach set is bounded (`cluster_size` tuples per node), so
/// the workload scales linearly with `clusters` instead of quadratically
/// with the node count.
pub fn clustered_reachability_network(
    clusters: u32,
    cluster_size: u32,
    config: EngineConfig,
) -> SecureNetwork {
    use pasn_net::{Link, NodeId};
    assert!(cluster_size >= 3, "a ring plus a chord needs >= 3 nodes");
    let mut links = Vec::new();
    for c in 0..clusters {
        let base = c * cluster_size;
        for j in 0..cluster_size {
            let src = NodeId(base + j);
            for offset in [1, 1 + cluster_size / 3] {
                links.push(Link {
                    src,
                    dst: NodeId(base + (j + offset) % cluster_size),
                    cost: 1,
                });
            }
        }
    }
    let topology = Topology::new((0..clusters * cluster_size).map(NodeId), links);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

/// Builds a single-node equijoin deployment with `rows` tuples in each of
/// two base relations sharing a key column: the canonical workload for the
/// secondary-index join path (`engine_fixpoint/indexed_join`).
///
/// Every arriving `a(@S,K,X)` delta joins `b(@S,K,Y)` on the bound prefix
/// `(S, K)` and vice versa, so the scan-based evaluation examines O(rows²)
/// candidate tuples while the indexed evaluation examines O(rows).  Keys are
/// distinct, producing exactly `rows` join results.
pub fn equijoin_engine(rows: u32, config: EngineConfig) -> pasn_engine::DistributedEngine {
    let program = pasn_datalog::parse_program("j1 m(@S,K,X,Y) :- a(@S,K,X), b(@S,K,Y).")
        .expect("the equijoin program parses");
    let location = Value::Addr(0);
    let mut engine =
        pasn_engine::DistributedEngine::new(&program, config, std::slice::from_ref(&location))
            .expect("the equijoin program compiles");
    for i in 0..rows {
        let k = Value::Int(i as i64);
        engine
            .insert_fact(
                location.clone(),
                Tuple::new(
                    "a",
                    vec![location.clone(), k.clone(), Value::Int(i as i64 * 2)],
                ),
            )
            .expect("known location");
        engine
            .insert_fact(
                location.clone(),
                Tuple::new("b", vec![location.clone(), k, Value::Int(i as i64 * 3)]),
            )
            .expect("known location");
    }
    engine
}

/// Runs one store-churn cycle at `rows` tuples and returns the resulting
/// store: insert `rows` soft-state `flow` tuples (indexed on the first
/// column), expire them all, then re-insert a fresh generation as hard
/// state.  Exercises seq-ordered expiry, lazy seq-list compaction and
/// incremental index maintenance — the memory-layout paths the join benches
/// never touch.
pub fn store_churn_cycle(rows: u32) -> pasn_engine::NodeStore {
    use pasn_engine::{NodeStore, TupleMeta};
    use pasn_net::SimTime;
    use pasn_provenance::ProvTag;

    let meta = |expires: Option<u64>| TupleMeta {
        tag: ProvTag::None,
        created_at: SimTime::ZERO,
        expires_at: expires.map(SimTime::from_micros),
        origin: Value::Addr(0),
        asserted_by: None,
    };
    let flow = |gen: i64, i: u32| {
        Tuple::new(
            "flow",
            vec![Value::Addr(i % 64), Value::Int(i as i64), Value::Int(gen)],
        )
    };
    let mut store = NodeStore::new();
    store.register_index("flow", &[0]);
    for i in 0..rows {
        store.insert(&flow(0, i), meta(Some(100)), |a, _| a.clone());
    }
    let expired = store.expire(SimTime::from_micros(100));
    assert_eq!(expired.len(), rows as usize);
    for i in 0..rows {
        store.insert(&flow(1, i), meta(None), |a, _| a.clone());
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_churn_cycle_rebuilds_the_relation() {
        let store = store_churn_cycle(256);
        assert_eq!(store.total_tuples(), 256);
        store.check_index_consistency().unwrap();
        // Post-churn scans stay in insertion order of the second generation.
        let rows = store.scan_ordered("flow");
        assert_eq!(rows.len(), 256);
        assert_eq!(rows[0].0.values[1], Value::Int(0));
        assert!(store.total_tuple_bytes() > 0);
    }

    #[test]
    fn helpers_produce_runnable_networks() {
        let mut net = best_path_network(6, SystemVariant::NDLog, 1);
        let metrics = net.run().unwrap();
        assert!(metrics.messages > 0);
        let mut net = reachability_network(6, EngineConfig::ndlog(), 1);
        assert!(net.run().unwrap().messages > 0);
    }

    #[test]
    fn clustered_reachability_is_worker_count_invariant() {
        let config = || {
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_batching()
        };
        let mut sequential = clustered_reachability_network(4, 5, config().with_workers(1));
        let baseline = sequential.run().unwrap();
        // Four disjoint 5-node clusters: each node reaches exactly its own
        // cluster, nothing across the cluster boundary.
        assert_eq!(sequential.query(&Value::Addr(0), "reachable").len(), 5);
        assert_eq!(sequential.query(&Value::Addr(19), "reachable").len(), 5);
        let mut parallel = clustered_reachability_network(4, 5, config().with_workers(4));
        let metrics = parallel.run().unwrap();
        assert_eq!(metrics.derivations, baseline.derivations);
        assert_eq!(metrics.tuples_stored, baseline.tuples_stored);
        assert_eq!(metrics.frames, baseline.frames);
        assert_eq!(metrics.completion, baseline.completion);
        assert_eq!(parallel.worker_threads(), 4);
        assert_eq!(parallel.partitions(), 4);
        assert!(parallel.cross_partition_frames() > 0);
        assert!(parallel.max_partition_queue() > 0);
    }

    #[test]
    fn batched_best_path_is_worker_count_invariant_at_deployment_scale() {
        // The aggregate (`a_MIN`) makes Best-Path the sharpest determinism
        // detector: any drift in delivery batching or frame seal times
        // changes which intermediate improvements fire, so derivations and
        // message counts diverge long before final answers do.  N = 20 with
        // 4 workers puts 5 nodes on every partition — the multi-node regime
        // where lane-order hazards live — and the paper cost model keeps the
        // CPU lanes non-trivial.
        let run = |workers: usize| {
            let topology = workload::evaluation_topology(20, 1);
            let mut net = SecureNetwork::builder()
                .program(pasn::programs::best_path())
                .topology(topology)
                .config(
                    SystemVariant::NDLog
                        .config()
                        .with_batching()
                        .with_workers(workers),
                )
                .build()
                .expect("the Best-Path program compiles");
            net.run().expect("fixpoint")
        };
        let baseline = run(1);
        let parallel = run(4);
        assert_eq!(parallel.derivations, baseline.derivations);
        assert_eq!(parallel.tuples_stored, baseline.tuples_stored);
        assert_eq!(parallel.messages, baseline.messages);
        assert_eq!(parallel.frames, baseline.frames);
        assert_eq!(parallel.bytes, baseline.bytes);
        assert_eq!(parallel.completion, baseline.completion);
    }

    #[test]
    fn equijoin_workload_joins_through_the_index() {
        let config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
        let mut engine = equijoin_engine(64, config);
        let metrics = engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.query(&Value::Addr(0), "m").len(), 64);
        assert!(metrics.index_probes > 0);
        assert_eq!(metrics.scan_probes, 0);

        // The same workload with indexing disabled produces identical
        // results but examines quadratically more candidates.
        let scan_config = EngineConfig::ndlog()
            .with_cost_model(CostModel::zero_cpu())
            .without_secondary_indexes();
        let mut scan_engine = equijoin_engine(64, scan_config);
        let scan_metrics = scan_engine.run_to_fixpoint().unwrap();
        assert_eq!(scan_engine.query(&Value::Addr(0), "m").len(), 64);
        assert_eq!(scan_metrics.index_probes, 0);
        assert!(scan_metrics.scan_probes > metrics.index_hits * 10);
    }
}
