//! # pasn-bench
//!
//! Benchmark support for the *Provenance-aware Secure Networks*
//! reproduction: shared helpers used by the Criterion benches (one per
//! figure/ablation) and by the `repro` binary that regenerates every figure
//! of the paper's evaluation section plus the EXPERIMENTS.md tables.

#![forbid(unsafe_code)]

use pasn::prelude::*;
use pasn::workload;

/// Builds a ready-to-run Best-Path deployment for one (N, variant) point of
/// the evaluation sweep.
pub fn best_path_network(n: u32, variant: SystemVariant, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology)
        .config(variant.config())
        .build()
        .expect("the Best-Path program compiles")
}

/// Builds a reachability deployment (used by the smaller ablation benches).
pub fn reachability_network(n: u32, config: EngineConfig, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

/// Builds a single-node equijoin deployment with `rows` tuples in each of
/// two base relations sharing a key column: the canonical workload for the
/// secondary-index join path (`engine_fixpoint/indexed_join`).
///
/// Every arriving `a(@S,K,X)` delta joins `b(@S,K,Y)` on the bound prefix
/// `(S, K)` and vice versa, so the scan-based evaluation examines O(rows²)
/// candidate tuples while the indexed evaluation examines O(rows).  Keys are
/// distinct, producing exactly `rows` join results.
pub fn equijoin_engine(rows: u32, config: EngineConfig) -> pasn_engine::DistributedEngine {
    let program = pasn_datalog::parse_program("j1 m(@S,K,X,Y) :- a(@S,K,X), b(@S,K,Y).")
        .expect("the equijoin program parses");
    let location = Value::Addr(0);
    let mut engine =
        pasn_engine::DistributedEngine::new(&program, config, std::slice::from_ref(&location))
            .expect("the equijoin program compiles");
    for i in 0..rows {
        let k = Value::Int(i as i64);
        engine
            .insert_fact(
                location.clone(),
                Tuple::new(
                    "a",
                    vec![location.clone(), k.clone(), Value::Int(i as i64 * 2)],
                ),
            )
            .expect("known location");
        engine
            .insert_fact(
                location.clone(),
                Tuple::new("b", vec![location.clone(), k, Value::Int(i as i64 * 3)]),
            )
            .expect("known location");
    }
    engine
}

/// Runs one store-churn cycle at `rows` tuples and returns the resulting
/// store: insert `rows` soft-state `flow` tuples (indexed on the first
/// column), expire them all, then re-insert a fresh generation as hard
/// state.  Exercises seq-ordered expiry, lazy seq-list compaction and
/// incremental index maintenance — the memory-layout paths the join benches
/// never touch.
pub fn store_churn_cycle(rows: u32) -> pasn_engine::NodeStore {
    use pasn_engine::{NodeStore, TupleMeta};
    use pasn_net::SimTime;
    use pasn_provenance::ProvTag;

    let meta = |expires: Option<u64>| TupleMeta {
        tag: ProvTag::None,
        created_at: SimTime::ZERO,
        expires_at: expires.map(SimTime::from_micros),
        origin: Value::Addr(0),
        asserted_by: None,
    };
    let flow = |gen: i64, i: u32| {
        Tuple::new(
            "flow",
            vec![Value::Addr(i % 64), Value::Int(i as i64), Value::Int(gen)],
        )
    };
    let mut store = NodeStore::new();
    store.register_index("flow", &[0]);
    for i in 0..rows {
        store.insert(&flow(0, i), meta(Some(100)), |a, _| a.clone());
    }
    let expired = store.expire(SimTime::from_micros(100));
    assert_eq!(expired.len(), rows as usize);
    for i in 0..rows {
        store.insert(&flow(1, i), meta(None), |a, _| a.clone());
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_churn_cycle_rebuilds_the_relation() {
        let store = store_churn_cycle(256);
        assert_eq!(store.total_tuples(), 256);
        store.check_index_consistency().unwrap();
        // Post-churn scans stay in insertion order of the second generation.
        let rows = store.scan_ordered("flow");
        assert_eq!(rows.len(), 256);
        assert_eq!(rows[0].0.values[1], Value::Int(0));
        assert!(store.total_tuple_bytes() > 0);
    }

    #[test]
    fn helpers_produce_runnable_networks() {
        let mut net = best_path_network(6, SystemVariant::NDLog, 1);
        let metrics = net.run().unwrap();
        assert!(metrics.messages > 0);
        let mut net = reachability_network(6, EngineConfig::ndlog(), 1);
        assert!(net.run().unwrap().messages > 0);
    }

    #[test]
    fn equijoin_workload_joins_through_the_index() {
        let config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
        let mut engine = equijoin_engine(64, config);
        let metrics = engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.query(&Value::Addr(0), "m").len(), 64);
        assert!(metrics.index_probes > 0);
        assert_eq!(metrics.scan_probes, 0);

        // The same workload with indexing disabled produces identical
        // results but examines quadratically more candidates.
        let scan_config = EngineConfig::ndlog()
            .with_cost_model(CostModel::zero_cpu())
            .without_secondary_indexes();
        let mut scan_engine = equijoin_engine(64, scan_config);
        let scan_metrics = scan_engine.run_to_fixpoint().unwrap();
        assert_eq!(scan_engine.query(&Value::Addr(0), "m").len(), 64);
        assert_eq!(scan_metrics.index_probes, 0);
        assert!(scan_metrics.scan_probes > metrics.index_hits * 10);
    }
}
