//! # pasn-bench
//!
//! Benchmark support for the *Provenance-aware Secure Networks*
//! reproduction: shared helpers used by the Criterion benches (one per
//! figure/ablation) and by the `repro` binary that regenerates every figure
//! of the paper's evaluation section plus the EXPERIMENTS.md tables.

#![forbid(unsafe_code)]

use pasn::prelude::*;
use pasn::workload;

/// Builds a ready-to-run Best-Path deployment for one (N, variant) point of
/// the evaluation sweep.
pub fn best_path_network(n: u32, variant: SystemVariant, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology)
        .config(variant.config())
        .build()
        .expect("the Best-Path program compiles")
}

/// Builds a reachability deployment (used by the smaller ablation benches).
pub fn reachability_network(n: u32, config: EngineConfig, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_runnable_networks() {
        let mut net = best_path_network(6, SystemVariant::NDLog, 1);
        let metrics = net.run().unwrap();
        assert!(metrics.messages > 0);
        let mut net = reachability_network(6, EngineConfig::ndlog(), 1);
        assert!(net.run().unwrap().messages > 0);
    }
}
