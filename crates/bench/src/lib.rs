//! # pasn-bench
//!
//! Benchmark support for the *Provenance-aware Secure Networks*
//! reproduction: shared helpers used by the Criterion benches (one per
//! figure/ablation) and by the `repro` binary that regenerates every figure
//! of the paper's evaluation section plus the EXPERIMENTS.md tables.

#![forbid(unsafe_code)]

use pasn::prelude::*;
use pasn::workload;

/// Builds a ready-to-run Best-Path deployment for one (N, variant) point of
/// the evaluation sweep.
pub fn best_path_network(n: u32, variant: SystemVariant, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology)
        .config(variant.config())
        .build()
        .expect("the Best-Path program compiles")
}

/// Builds a reachability deployment (used by the smaller ablation benches).
pub fn reachability_network(n: u32, config: EngineConfig, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

/// Builds the parallel-evaluation workload: `clusters` disjoint clusters of
/// `cluster_size` nodes, each wired as a directed ring plus a fixed-offset
/// chord, running the NDLog reachability program.
///
/// The clusters are mutually unreachable, so the fixpoint is `clusters`
/// independent transitive closures — embarrassingly parallel work whose
/// node ids interleave across the `node_id % workers` partition map,
/// keeping every partition of the worker pool busy in each wave.  The
/// per-cluster reach set is bounded (`cluster_size` tuples per node), so
/// the workload scales linearly with `clusters` instead of quadratically
/// with the node count.
pub fn clustered_reachability_network(
    clusters: u32,
    cluster_size: u32,
    config: EngineConfig,
) -> SecureNetwork {
    use pasn_net::{Link, NodeId};
    assert!(cluster_size >= 3, "a ring plus a chord needs >= 3 nodes");
    let mut links = Vec::new();
    for c in 0..clusters {
        let base = c * cluster_size;
        for j in 0..cluster_size {
            let src = NodeId(base + j);
            for offset in [1, 1 + cluster_size / 3] {
                links.push(Link {
                    src,
                    dst: NodeId(base + (j + offset) % cluster_size),
                    cost: 1,
                });
            }
        }
    }
    let topology = Topology::new((0..clusters * cluster_size).map(NodeId), links);
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config)
        .build()
        .expect("the reachability program compiles")
}

/// Builds a single-node equijoin deployment with `rows` tuples in each of
/// two base relations sharing a key column: the canonical workload for the
/// secondary-index join path (`engine_fixpoint/indexed_join`).
///
/// Every arriving `a(@S,K,X)` delta joins `b(@S,K,Y)` on the bound prefix
/// `(S, K)` and vice versa, so the scan-based evaluation examines O(rows²)
/// candidate tuples while the indexed evaluation examines O(rows).  Keys are
/// distinct, producing exactly `rows` join results.
pub fn equijoin_engine(rows: u32, config: EngineConfig) -> pasn_engine::DistributedEngine {
    let program = pasn_datalog::parse_program("j1 m(@S,K,X,Y) :- a(@S,K,X), b(@S,K,Y).")
        .expect("the equijoin program parses");
    let location = Value::Addr(0);
    let mut engine =
        pasn_engine::DistributedEngine::new(&program, config, std::slice::from_ref(&location))
            .expect("the equijoin program compiles");
    for i in 0..rows {
        let k = Value::Int(i as i64);
        engine
            .insert_fact(
                location.clone(),
                Tuple::new(
                    "a",
                    vec![location.clone(), k.clone(), Value::Int(i as i64 * 2)],
                ),
            )
            .expect("known location");
        engine
            .insert_fact(
                location.clone(),
                Tuple::new("b", vec![location.clone(), k, Value::Int(i as i64 * 3)]),
            )
            .expect("known location");
    }
    engine
}

/// Simulated-time spacing between generations of the streaming scale
/// workload: a new cluster's links come up every `GENERATION_GAP_US`.
pub const GENERATION_GAP_US: u64 = 200_000;

/// Soft-state lifetime of every link in the streaming scale workload:
/// 2.5 generations, so roughly three clusters are live at any instant
/// regardless of how many the run visits in total.
pub const GENERATION_TTL_US: u64 = 500_000;

/// Builds the order-of-magnitude scale workload: `clusters` disjoint
/// ring-plus-chord clusters of `cluster_size` nodes whose links are *not*
/// pre-inserted — they arrive as a time-ordered stream of `LinkUp` events,
/// one generation (cluster) every [`GENERATION_GAP_US`], and go back down
/// one [`GENERATION_TTL_US`] later.
///
/// Two eviction mechanisms bound memory during the run.  The quadratic
/// part — each cluster's `cluster_size²` derived `reachable` tuples — is
/// soft state under the engine's default TTL, killed mid-run by scheduled
/// expiry cascading through provenance-guided deletion (base facts are
/// deliberately hard state, so the TTL never touches the links).  The
/// linear part — the links themselves — is retired by the scripted
/// `LinkDown`s.  Fed through [`SecureNetwork::run_streaming`], every
/// generation converges, expires and retires before more than a couple of
/// younger generations have arrived, so total work grows with `clusters`
/// while peak `store_bytes + index_bytes` stays O(live generations): the
/// bounded-memory property the `reachability_10k` bench rows pin.  The
/// returned event list is the stream; feeding it to `run_scenario` instead
/// reproduces the identical schedule with O(script) driver memory.
pub fn generational_reachability_workload(
    clusters: u32,
    cluster_size: u32,
    config: EngineConfig,
) -> (SecureNetwork, Vec<(SimTime, ChurnEvent)>) {
    assert!(cluster_size >= 3, "a ring plus a chord needs >= 3 nodes");
    let locations: Vec<Value> = (0..clusters * cluster_size).map(Value::Addr).collect();
    let net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .locations(locations)
        .config(
            config
                .with_dynamics()
                .with_default_ttl_us(GENERATION_TTL_US),
        )
        .build()
        .expect("the reachability program compiles");
    let mut events = Vec::new();
    for c in 0..clusters {
        let up_at = SimTime::from_micros(c as u64 * GENERATION_GAP_US);
        let down_at = SimTime::from_micros(up_at.as_micros() + GENERATION_TTL_US);
        let base = c * cluster_size;
        for j in 0..cluster_size {
            for offset in [1, 1 + cluster_size / 3] {
                let src = Value::Addr(base + j);
                let dst = Value::Addr(base + (j + offset) % cluster_size);
                events.push((
                    up_at,
                    ChurnEvent::LinkUp {
                        src: src.clone(),
                        dst: dst.clone(),
                        cost: None,
                    },
                ));
                events.push((down_at, ChurnEvent::LinkDown { src, dst }));
            }
        }
    }
    // Interleave the generations into one time-ordered stream (stable, so
    // same-instant events keep their per-cluster order).
    events.sort_by_key(|(at, _)| *at);
    (net, events)
}

/// What [`sustained_expiry_churn`] observed: cumulative insert/expiry
/// totals, the seq-list positions compaction actually walked, and the peak
/// footprint across generations.
pub struct ExpiryChurnReport {
    /// The store after the final (still-live) generation.
    pub store: pasn_engine::NodeStore,
    /// Tuples inserted across all generations.
    pub inserted: u64,
    /// Tuples removed by TTL expiry.
    pub expired: u64,
    /// Seq-list entries walked by lazy compaction — the amortisation
    /// subject: it must stay within a small constant factor of `expired`.
    pub compaction_walked: u64,
    /// Peak `store_bytes` across generations.
    pub peak_store_bytes: u64,
    /// Peak `index_bytes` across generations.
    pub peak_index_bytes: u64,
}

/// Drives one store through `generations` full soft-state generations of
/// `rows` tuples each: insert a generation with a TTL, expire it, insert
/// the next.  Each generation's rows are distinct (the generation number
/// is a column), so the store's seq lists accrue real dead-entry debt
/// every cycle; the report's `compaction_walked` against `expired` is the
/// amortisation evidence the `sustained_expiry_churn` bench row pins, and
/// the peak gauges show memory staying O(one generation) rather than
/// O(history).
pub fn sustained_expiry_churn(rows: u32, generations: u32) -> ExpiryChurnReport {
    use pasn_engine::{NodeStore, TupleMeta};

    assert!(generations >= 1);
    let meta = |expires: u64| TupleMeta {
        tag: ProvTag::None,
        created_at: SimTime::ZERO,
        expires_at: Some(SimTime::from_micros(expires)),
        origin: Value::Addr(0),
        asserted_by: None,
    };
    let flow = |generation: i64, i: u32| {
        Tuple::new(
            "flow",
            vec![
                Value::Addr(i % 1024),
                Value::Int(i as i64),
                Value::Int(generation),
            ],
        )
    };
    let mut store = NodeStore::new();
    store.register_index("flow", &[0]);
    let mut report = ExpiryChurnReport {
        store: NodeStore::new(),
        inserted: 0,
        expired: 0,
        compaction_walked: 0,
        peak_store_bytes: 0,
        peak_index_bytes: 0,
    };
    for g in 0..generations {
        let deadline = (g as u64 + 1) * 1_000;
        for i in 0..rows {
            store.insert(&flow(g as i64, i), meta(deadline), |a, _| a.clone());
        }
        report.inserted += rows as u64;
        report.peak_store_bytes = report.peak_store_bytes.max(store.store_bytes() as u64);
        report.peak_index_bytes = report.peak_index_bytes.max(store.index_bytes() as u64);
        // The last generation stays live so the final store is non-empty.
        if g + 1 < generations {
            report.expired += store.expire(SimTime::from_micros(deadline)).len() as u64;
            report.compaction_walked += store.take_compaction_debt();
        }
    }
    report.store = store;
    report
}

/// What [`chord_churn_workload`] observed across its three lookup phases
/// (stable ring, post-departure, post-rejoin).
pub struct ChordChurnReport {
    /// Lookups issued across all phases.
    pub lookups: u64,
    /// Total forwarding hops across all lookups.
    pub hops: u64,
    /// Hop assertions that verified (must equal `hops`).
    pub verified_hops: u64,
    /// Membership events (departures + rejoins).
    pub churn_events: u64,
    /// Ring members at the end of the run.
    pub members: u64,
}

/// The Chord-under-churn workload: build a stabilised `nodes`-member ring
/// with HMAC-authenticated hop assertions, then run three phases of
/// `lookups_per_phase` verified lookups — on the stable ring, after every
/// eighth member departs (plus re-stabilisation), and after they all
/// rejoin.  Deterministic keys and rotating origins make every phase's hop
/// totals reproducible bit for bit, which is what lets `measured` use the
/// synthesized counters as its determinism oracle.
pub fn chord_churn_workload(nodes: u32, lookups_per_phase: usize) -> ChordChurnReport {
    use pasn_crypto::SaysLevel;
    use pasn_overlay::chord::{ChordConfig, ChordRing};

    let mut ring = ChordRing::build(ChordConfig {
        nodes,
        bits: 24,
        says_level: SaysLevel::Hmac,
        modulus_bits: 512,
        seed: 7,
        successor_list_len: 3,
    })
    .expect("ring builds");
    let mut report = ChordChurnReport {
        lookups: 0,
        hops: 0,
        verified_hops: 0,
        churn_events: 0,
        members: 0,
    };
    let phase = |ring: &ChordRing, report: &mut ChordChurnReport, label: &str| {
        let origins = ring.node_ids();
        for i in 0..lookups_per_phase {
            let origin = origins[i % origins.len()];
            let key = ring.space().key_id(&format!("{label}-key-{i}"));
            let trace = ring.lookup(origin, key).expect("lookup succeeds");
            report.lookups += 1;
            report.hops += trace.hop_count() as u64;
            ring.verify_lookup(&trace).expect("hop assertions verify");
            report.verified_hops += trace.hop_count() as u64;
        }
    };

    phase(&ring, &mut report, "stable");
    let departing: Vec<_> = ring.node_ids().into_iter().step_by(8).collect();
    for id in &departing {
        ring.remove_node(*id).expect("member departs");
        report.churn_events += 1;
    }
    ring.stabilize();
    phase(&ring, &mut report, "churned");
    for id in &departing {
        ring.rejoin_node(*id).expect("member rejoins");
        report.churn_events += 1;
    }
    ring.stabilize();
    phase(&ring, &mut report, "rejoined");
    report.members = ring.len() as u64;
    report
}

/// Runs one store-churn cycle at `rows` tuples and returns the resulting
/// store: insert `rows` soft-state `flow` tuples (indexed on the first
/// column), expire them all, then re-insert a fresh generation as hard
/// state.  Exercises seq-ordered expiry, lazy seq-list compaction and
/// incremental index maintenance — the memory-layout paths the join benches
/// never touch.
pub fn store_churn_cycle(rows: u32) -> pasn_engine::NodeStore {
    use pasn_engine::{NodeStore, TupleMeta};
    use pasn_net::SimTime;
    use pasn_provenance::ProvTag;

    let meta = |expires: Option<u64>| TupleMeta {
        tag: ProvTag::None,
        created_at: SimTime::ZERO,
        expires_at: expires.map(SimTime::from_micros),
        origin: Value::Addr(0),
        asserted_by: None,
    };
    let flow = |gen: i64, i: u32| {
        Tuple::new(
            "flow",
            vec![Value::Addr(i % 64), Value::Int(i as i64), Value::Int(gen)],
        )
    };
    let mut store = NodeStore::new();
    store.register_index("flow", &[0]);
    for i in 0..rows {
        store.insert(&flow(0, i), meta(Some(100)), |a, _| a.clone());
    }
    let expired = store.expire(SimTime::from_micros(100));
    assert_eq!(expired.len(), rows as usize);
    for i in 0..rows {
        store.insert(&flow(1, i), meta(None), |a, _| a.clone());
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_churn_cycle_rebuilds_the_relation() {
        let store = store_churn_cycle(256);
        assert_eq!(store.total_tuples(), 256);
        store.check_index_consistency().unwrap();
        // Post-churn scans stay in insertion order of the second generation.
        let rows = store.scan_ordered("flow");
        assert_eq!(rows.len(), 256);
        assert_eq!(rows[0].0.values[1], Value::Int(0));
        assert!(store.total_tuple_bytes() > 0);
    }

    #[test]
    fn helpers_produce_runnable_networks() {
        let mut net = best_path_network(6, SystemVariant::NDLog, 1);
        let metrics = net.run().unwrap();
        assert!(metrics.messages > 0);
        let mut net = reachability_network(6, EngineConfig::ndlog(), 1);
        assert!(net.run().unwrap().messages > 0);
    }

    #[test]
    fn generational_workload_expires_old_generations_mid_run() {
        let config = || EngineConfig::ndlog().with_batching();
        let (mut net, events) = generational_reachability_workload(6, 5, config());
        let metrics = net.run_streaming(events.clone()).unwrap();
        // Six 5-node clusters: each converged to its 25-tuple closure at
        // some point (at least one firing per derived row), then TTL expiry
        // killed the derived soft state and the scripted `LinkDown`s
        // retired the links, so the final store is empty.
        assert!(metrics.derivations >= 6 * 25);
        assert!(metrics.retractions > 0, "eviction must fire mid-run");
        assert_eq!(metrics.tuples_stored, 0);
        assert_eq!(net.query(&Value::Addr(0), "reachable").len(), 0);
        assert_eq!(net.query(&Value::Addr(0), "link").len(), 0);
        // The peak footprint was sampled and covers strictly more than the
        // (empty) final store.
        assert!(metrics.peak_store_bytes > metrics.store_bytes);
        // Streaming reproduces the batch scenario bit for bit.
        let (mut batch, _) = generational_reachability_workload(6, 5, config());
        let script = events.iter().fold(ChurnScript::new(), |s, (at, e)| {
            s.at(at.as_micros(), e.clone())
        });
        let batch_metrics = batch.run_scenario(&script).unwrap();
        assert_eq!(metrics.derivations, batch_metrics.derivations);
        assert_eq!(metrics.tuples_stored, batch_metrics.tuples_stored);
        assert_eq!(metrics.frames, batch_metrics.frames);
        assert_eq!(metrics.completion, batch_metrics.completion);
    }

    #[test]
    fn sustained_expiry_churn_amortises_compaction() {
        let report = sustained_expiry_churn(2_000, 6);
        assert_eq!(report.inserted, 12_000);
        assert_eq!(report.expired, 10_000);
        assert_eq!(report.store.total_tuples(), 2_000);
        report.store.check_index_consistency().unwrap();
        // Compaction walks a bounded multiple of what expiry removed.
        assert!(
            report.compaction_walked <= 4 * report.expired,
            "compaction debt {} not amortised against {} removals",
            report.compaction_walked,
            report.expired
        );
        // Memory stayed O(one generation), not O(history): the peak is a
        // small multiple of the final single-generation footprint.
        assert!(report.peak_store_bytes < 2 * report.store.store_bytes() as u64);
    }

    #[test]
    fn chord_churn_workload_is_deterministic_and_verified() {
        let a = chord_churn_workload(32, 16);
        assert_eq!(a.lookups, 48);
        assert_eq!(a.hops, a.verified_hops);
        assert!(a.hops > 0);
        assert_eq!(a.churn_events, 8);
        assert_eq!(a.members, 32);
        // O(log N) routing: average hops stay under the identifier bits.
        assert!(a.hops < a.lookups * 24);
        let b = chord_churn_workload(32, 16);
        assert_eq!(a.hops, b.hops);
    }

    #[test]
    fn clustered_reachability_is_worker_count_invariant() {
        let config = || {
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_batching()
        };
        let mut sequential = clustered_reachability_network(4, 5, config().with_workers(1));
        let baseline = sequential.run().unwrap();
        // Four disjoint 5-node clusters: each node reaches exactly its own
        // cluster, nothing across the cluster boundary.
        assert_eq!(sequential.query(&Value::Addr(0), "reachable").len(), 5);
        assert_eq!(sequential.query(&Value::Addr(19), "reachable").len(), 5);
        let mut parallel = clustered_reachability_network(4, 5, config().with_workers(4));
        let metrics = parallel.run().unwrap();
        assert_eq!(metrics.derivations, baseline.derivations);
        assert_eq!(metrics.tuples_stored, baseline.tuples_stored);
        assert_eq!(metrics.frames, baseline.frames);
        assert_eq!(metrics.completion, baseline.completion);
        assert_eq!(parallel.worker_threads(), 4);
        assert_eq!(parallel.partitions(), 4);
        assert!(parallel.cross_partition_frames() > 0);
        assert!(parallel.max_partition_queue() > 0);
    }

    #[test]
    fn batched_best_path_is_worker_count_invariant_at_deployment_scale() {
        // The aggregate (`a_MIN`) makes Best-Path the sharpest determinism
        // detector: any drift in delivery batching or frame seal times
        // changes which intermediate improvements fire, so derivations and
        // message counts diverge long before final answers do.  N = 20 with
        // 4 workers puts 5 nodes on every partition — the multi-node regime
        // where lane-order hazards live — and the paper cost model keeps the
        // CPU lanes non-trivial.
        let run = |workers: usize| {
            let topology = workload::evaluation_topology(20, 1);
            let mut net = SecureNetwork::builder()
                .program(pasn::programs::best_path())
                .topology(topology)
                .config(
                    SystemVariant::NDLog
                        .config()
                        .with_batching()
                        .with_workers(workers),
                )
                .build()
                .expect("the Best-Path program compiles");
            net.run().expect("fixpoint")
        };
        let baseline = run(1);
        let parallel = run(4);
        assert_eq!(parallel.derivations, baseline.derivations);
        assert_eq!(parallel.tuples_stored, baseline.tuples_stored);
        assert_eq!(parallel.messages, baseline.messages);
        assert_eq!(parallel.frames, baseline.frames);
        assert_eq!(parallel.bytes, baseline.bytes);
        assert_eq!(parallel.completion, baseline.completion);
    }

    #[test]
    fn equijoin_workload_joins_through_the_index() {
        let config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
        let mut engine = equijoin_engine(64, config);
        let metrics = engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.query(&Value::Addr(0), "m").len(), 64);
        assert!(metrics.index_probes > 0);
        assert_eq!(metrics.scan_probes, 0);

        // The same workload with indexing disabled produces identical
        // results but examines quadratically more candidates.
        let scan_config = EngineConfig::ndlog()
            .with_cost_model(CostModel::zero_cpu())
            .without_secondary_indexes();
        let mut scan_engine = equijoin_engine(64, scan_config);
        let scan_metrics = scan_engine.run_to_fixpoint().unwrap();
        assert_eq!(scan_engine.query(&Value::Addr(0), "m").len(), 64);
        assert_eq!(scan_metrics.index_probes, 0);
        assert!(scan_metrics.scan_probes > metrics.index_hits * 10);
    }
}
