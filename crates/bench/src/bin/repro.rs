//! `repro` — regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p pasn-bench --bin repro -- [fig3|fig4|summary|all|trace] [--quick] [--runs K] [--max-n N] [--trace PATH]
//! ```
//!
//! The full sweep runs the Best-Path query over random topologies of
//! N = 10..100 nodes (average out-degree three) under NDLog, SeNDLog and
//! SeNDLogProv, prints the Figure 3 and Figure 4 series as markdown tables,
//! and reproduces the Section 6 summary statistics (average and at-max-N
//! relative overheads).  Results are also appended to
//! `target/repro_results.md` so they can be pasted into EXPERIMENTS.md.
//!
//! Every run additionally writes `BENCH_engine.json`: fixpoint wall-times,
//! index hit/probe counters, storage gauges, shipment-frame counters
//! (`messages`/`signatures`/`frames`/`batched_tuples`/`mean_batch_occupancy`),
//! per-mechanism crypto operation counts
//! (`rsa_sign_ops`/`rsa_verify_ops`/`hmac_ops`/`handshakes`/
//! `handshake_batches`) and the
//! network-dynamics counters
//! (`churn_events`/`retractions`/`rederivations`/`tombstone_frames`), the
//! worker-pool layout counters
//! (`worker_threads`/`partitions`/`cross_partition_frames`/`max_partition_queue`)
//! and the scale gauges
//! (`tuples_per_sec`/`bytes_per_tuple`/`peak_store_bytes`/`peak_index_bytes`/
//! `peak_tuples`/`compaction_walked`)
//! for the engine's join, batching, session-channel, churn, parallel and
//! order-of-magnitude scale workloads (streaming 10k-node generational
//! reachability, sustained expiry churn, 1k-member Chord under churn),
//! giving future changes a perf trajectory to compare against.
//!
//! With `--trace PATH`, the lossy session workload is re-run under the
//! deterministic flight recorder and its Chrome/Perfetto `trace.json` is
//! written to PATH — after asserting that the frame-lifecycle events in the
//! trace reconstruct the run's transport counters exactly.  The `trace`
//! subcommand instead records the streaming 10k-node generational workload
//! (downscaled under `--quick`); because the recorder runs on simulated
//! time, its output is byte-identical for any `PASN_WORKERS`, which CI uses
//! as a determinism oracle.

use pasn::experiment::{
    render_figure, render_summary, run_sweep, summarize, FigureMetric, SweepConfig,
};
use pasn::prelude::*;
use std::io::Write;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The subcommand is the first bare word that is not the value of a
    // value-taking flag (`--runs 3`, `--trace out.json`, ...).
    let value_flags = ["--runs", "--max-n", "--trace"];
    let what = args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--") && (*i == 0 || !value_flags.contains(&args[i - 1].as_str()))
        })
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "all".to_string());
    let quick = args.iter().any(|a| a == "--quick");
    let runs = arg_value(&args, "--runs").unwrap_or(if quick { 1 } else { 2 });
    let max_n = arg_value(&args, "--max-n").unwrap_or(if quick { 30 } else { 100 });
    let trace_path = arg_str(&args, "--trace");

    if what == "trace" {
        let out = trace_path.unwrap_or_else(|| "trace.json".to_string());
        record_scale_trace(quick, &out);
        return;
    }

    let mut sizes: Vec<u32> = (1..=10).map(|i| i * 10).filter(|n| *n <= max_n).collect();
    if sizes.is_empty() {
        sizes = vec![max_n.max(10)];
    }
    let config = SweepConfig {
        runs_per_point: runs,
        sizes,
        ..SweepConfig::default()
    };

    eprintln!(
        "running Best-Path sweep: sizes {:?}, {} run(s) per point, 3 variants ...",
        config.sizes, config.runs_per_point
    );
    let started = std::time::Instant::now();
    let points = run_sweep(&config).expect("sweep completes");
    eprintln!("sweep finished in {:.1}s", started.elapsed().as_secs_f64());

    let mut report = String::new();
    report.push_str(&format!(
        "# Reproduction run ({} sizes × 3 variants × {} runs)\n\n",
        config.sizes.len(),
        config.runs_per_point
    ));

    if what == "fig3" || what == "all" {
        report.push_str("## Figure 3 — query completion time (s), Best-Path query\n\n");
        report.push_str(&render_figure(&points, FigureMetric::CompletionTime));
        report.push('\n');
    }
    if what == "fig4" || what == "all" {
        report.push_str("## Figure 4 — bandwidth utilization (MB), Best-Path query\n\n");
        report.push_str(&render_figure(&points, FigureMetric::Bandwidth));
        report.push('\n');
    }
    if what == "summary" || what == "all" {
        report.push_str("## Section 6 summary statistics\n\n");
        report.push_str(&render_summary(&summarize(&points)));
        report.push('\n');
    }

    println!("{report}");

    if let Ok(mut f) = std::fs::File::create("target/repro_results.md") {
        let _ = f.write_all(report.as_bytes());
        eprintln!("written to target/repro_results.md");
    }

    let engine_json = engine_bench_json(
        if quick { 400 } else { 1_200 },
        quick,
        trace_path.as_deref(),
    );
    // A failed write must be fatal: CI validates this file, and exiting 0
    // without writing would let a stale committed copy pass the check.
    std::fs::write("BENCH_engine.json", engine_json.as_bytes()).expect("write BENCH_engine.json");
    eprintln!("written to BENCH_engine.json");
}

/// The `trace` subcommand: records the streaming generational reachability
/// workload (the `reachability_10k` point, downscaled under `--quick`)
/// under the flight recorder and writes the Chrome/Perfetto export.  The
/// worker count is deliberately left to the `PASN_WORKERS` preset default:
/// the recorder runs on simulated time, so the written file must be
/// byte-identical for any pool size — CI diffs a one-worker run against a
/// four-worker run to enforce it.
fn record_scale_trace(quick: bool, out: &str) {
    let clusters = if quick { 50 } else { 500 };
    let started = Instant::now();
    let (mut net, events) = pasn_bench::generational_reachability_workload(
        clusters,
        20,
        EngineConfig::ndlog()
            .with_batching()
            .with_tracing(TraceConfig::new().with_gauge_interval_us(1_000)),
    );
    let metrics = net.run_streaming(events).expect("streaming fixpoint");
    let trace = net.trace().expect("tracing enabled");
    eprintln!(
        "traced reachability workload ({} clusters, {} worker(s)): {} events in {:.1}s host time",
        clusters,
        metrics.worker_threads,
        trace.len(),
        started.elapsed().as_secs_f64()
    );
    std::fs::write(out, trace.to_chrome_json()).expect("write trace.json");
    eprintln!("written to {out}");
}

/// One measurement point: wall-clock, the join-path counters, the storage
/// gauges of the shared-row layout, the shipment-frame counters of the
/// batched evaluation path, and the per-mechanism crypto operation counts
/// of the `says` layer.
fn point_json(name: &str, wall: std::time::Duration, metrics: &RunMetrics) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"workload\": \"{}\",\n",
            "      \"fixpoint_wall_ms\": {:.3},\n",
            "      \"derivations\": {},\n",
            "      \"tuples_stored\": {},\n",
            "      \"tuples_per_sec\": {:.3},\n",
            "      \"bytes_per_tuple\": {:.3},\n",
            "      \"index_probes\": {},\n",
            "      \"index_hits\": {},\n",
            "      \"scan_probes\": {},\n",
            "      \"store_bytes\": {},\n",
            "      \"index_bytes\": {},\n",
            "      \"peak_store_bytes\": {},\n",
            "      \"peak_index_bytes\": {},\n",
            "      \"peak_tuples\": {},\n",
            "      \"compaction_walked\": {},\n",
            "      \"messages\": {},\n",
            "      \"signatures\": {},\n",
            "      \"frames\": {},\n",
            "      \"batched_tuples\": {},\n",
            "      \"mean_batch_occupancy\": {:.3},\n",
            "      \"rsa_sign_ops\": {},\n",
            "      \"rsa_verify_ops\": {},\n",
            "      \"hmac_ops\": {},\n",
            "      \"handshakes\": {},\n",
            "      \"handshake_batches\": {},\n",
            "      \"churn_events\": {},\n",
            "      \"retractions\": {},\n",
            "      \"rederivations\": {},\n",
            "      \"tombstone_frames\": {},\n",
            "      \"frames_dropped\": {},\n",
            "      \"frames_duplicated\": {},\n",
            "      \"retransmits\": {},\n",
            "      \"acks\": {},\n",
            "      \"backoff_events\": {},\n",
            "      \"max_retransmit_per_frame\": {},\n",
            "      \"worker_threads\": {},\n",
            "      \"partitions\": {},\n",
            "      \"cross_partition_frames\": {},\n",
            "      \"max_partition_queue\": {}\n",
            "    }}"
        ),
        name,
        wall.as_secs_f64() * 1_000.0,
        metrics.derivations,
        metrics.tuples_stored,
        metrics.tuples_per_sec(),
        metrics.bytes_per_tuple(),
        metrics.index_probes,
        metrics.index_hits,
        metrics.scan_probes,
        metrics.store_bytes,
        metrics.index_bytes,
        metrics.peak_store_bytes.max(metrics.store_bytes),
        metrics.peak_index_bytes.max(metrics.index_bytes),
        metrics.peak_tuples.max(metrics.tuples_stored),
        metrics.compaction_walked,
        metrics.messages,
        metrics.signatures,
        metrics.frames,
        metrics.batched_tuples,
        metrics.mean_batch_occupancy(),
        metrics.rsa_sign_ops,
        metrics.rsa_verify_ops,
        metrics.hmac_ops,
        metrics.handshakes,
        metrics.handshake_batches,
        metrics.churn_events,
        metrics.retractions,
        metrics.rederivations,
        metrics.tombstone_frames,
        metrics.frames_dropped,
        metrics.frames_duplicated,
        metrics.retransmits,
        metrics.acks,
        metrics.backoff_events,
        metrics.max_retransmit_per_frame,
        metrics.worker_threads,
        metrics.partitions,
        metrics.cross_partition_frames,
        metrics.max_partition_queue,
    )
}

/// Number of times each host-wall-measured workload is rebuilt and rerun;
/// the reported wall time is the minimum across repetitions.  A single
/// `Instant` span around a run of a few milliseconds absorbs first-touch
/// page faults, cold caches and scheduler preemption; min-of-N is the
/// standard low-noise estimator, applied uniformly to every workload so
/// cross-workload ratios stay honest.
const WALL_REPS: u32 = 5;

/// Builds and runs one workload [`WALL_REPS`] times, returning the minimum
/// wall time and the metrics — which double as a determinism oracle: every
/// repetition must produce bit-identical counters.  Construction (topology
/// build, key provisioning) happens outside the timed span; only `run` is
/// measured.
fn measured<T, B, R>(build: B, run: R) -> (std::time::Duration, RunMetrics)
where
    B: FnMut() -> T,
    R: FnMut(&mut T) -> RunMetrics,
{
    measured_reps(WALL_REPS, build, run)
}

/// [`measured`] with an explicit repetition count: the order-of-magnitude
/// scale workloads run seconds per repetition, so they trade estimator
/// quality for total runtime (two repetitions still exercise the
/// determinism oracle).
fn measured_reps<T, B, R>(reps: u32, mut build: B, mut run: R) -> (std::time::Duration, RunMetrics)
where
    B: FnMut() -> T,
    R: FnMut(&mut T) -> RunMetrics,
{
    let mut best: Option<(std::time::Duration, RunMetrics)> = None;
    for _ in 0..reps.max(1) {
        let mut subject = build();
        let started = Instant::now();
        let metrics = run(&mut subject);
        let wall = started.elapsed();
        if let Some((best_wall, best_metrics)) = &mut best {
            // `wall_clock` is the run's own host-time measurement and is
            // expected to jitter; every evaluation counter must not.
            let mut comparable = metrics;
            comparable.wall_clock = best_metrics.wall_clock;
            assert_eq!(*best_metrics, comparable, "nondeterministic workload run");
            *best_wall = (*best_wall).min(wall);
        } else {
            best = Some((wall, metrics));
        }
    }
    best.expect("at least one repetition")
}

/// Runs the engine join workloads (indexed and scan-forced equijoin at
/// `rows` tuples per relation, plus the N=30 reachability deployment) and
/// the order-of-magnitude scale workloads (streaming generational
/// reachability, sustained expiry churn, Chord under churn — downscaled
/// when `quick`), and renders the `BENCH_engine.json` document.  When
/// `trace_path` is set, the lossy session workload is additionally re-run
/// under the flight recorder and its Perfetto export written there.
fn engine_bench_json(rows: u32, quick: bool, trace_path: Option<&str>) -> String {
    let mut points = Vec::new();

    let (wall, metrics) = measured(
        || {
            let config = EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu());
            pasn_bench::equijoin_engine(rows, config)
        },
        |engine| engine.run_to_fixpoint().expect("fixpoint"),
    );
    points.push(point_json(
        &format!("equijoin_indexed_{rows}"),
        wall,
        &metrics,
    ));

    let (wall, metrics) = measured(
        || {
            let config = EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .without_secondary_indexes();
            pasn_bench::equijoin_engine(rows, config)
        },
        |engine| engine.run_to_fixpoint().expect("fixpoint"),
    );
    points.push(point_json(&format!("equijoin_scan_{rows}"), wall, &metrics));

    // The indexed equijoin with local delta batching: plan dispatch, slot
    // setup and rule-clone overhead amortise over each batch, so the
    // fixpoint wall time drops below `equijoin_indexed` while derivations
    // and stored tuples stay identical.
    let (wall, metrics) = measured(
        || {
            let config = EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_batching();
            pasn_bench::equijoin_engine(rows, config)
        },
        |engine| engine.run_to_fixpoint().expect("fixpoint"),
    );
    points.push(point_json(
        &format!("equijoin_batched_{rows}"),
        wall,
        &metrics,
    ));

    let (wall, metrics) = measured(
        || {
            pasn_bench::reachability_network(
                30,
                EngineConfig::ndlog().with_cost_model(CostModel::zero_cpu()),
                7,
            )
        },
        |net| net.run().expect("fixpoint"),
    );
    points.push(point_json("reachability_30", wall, &metrics));

    // The same reachability deployment, authenticated and batched: one RSA
    // signature per multi-tuple frame instead of one per shipped tuple, so
    // `signatures == frames` and both undercut the per-tuple message count
    // above while `derivations`/`tuples_stored` stay identical.
    let (wall, metrics) = measured(
        || {
            pasn_bench::reachability_network(
                30,
                EngineConfig::sendlog()
                    .with_cost_model(CostModel::zero_cpu())
                    .with_batching(),
                7,
            )
        },
        |net| net.run().expect("fixpoint"),
    );
    points.push(point_json("batched_reachability_30", wall, &metrics));

    // The same deployment again over session-keyed channels: RSA collapses
    // from one sign per frame to one key-establishment handshake per live
    // directed link (`rsa_sign_ops == handshakes`, far below `frames`),
    // with every frame HMAC-authenticated instead — while `derivations`,
    // `tuples_stored`, `frames` and `batched_tuples` stay bit-identical to
    // `batched_reachability_30` and the fixpoint wall time drops with the
    // per-frame bignum exponentiations.
    let (session_wall, session_metrics) = measured(
        || {
            pasn_bench::reachability_network(
                30,
                EngineConfig::sendlog_session()
                    .with_cost_model(CostModel::zero_cpu())
                    .with_batching(),
                7,
            )
        },
        |net| net.run().expect("fixpoint"),
    );
    points.push(point_json(
        "session_reachability_30",
        session_wall,
        &session_metrics,
    ));

    // trace_overhead: the flight recorder is observation only.  The traced
    // session run must reproduce every counter bit for bit, and its wall
    // time must stay within 1.3x of the untraced run (plus a small absolute
    // allowance — these runs are a few milliseconds, so a fixed floor keeps
    // scheduler jitter from failing the ratio on an otherwise healthy run).
    let (traced_wall, traced_metrics) = measured(
        || {
            pasn_bench::reachability_network(
                30,
                EngineConfig::sendlog_session()
                    .with_cost_model(CostModel::zero_cpu())
                    .with_batching()
                    .with_tracing(TraceConfig::new()),
                7,
            )
        },
        |net| net.run().expect("fixpoint"),
    );
    let mut traced_cmp = traced_metrics.clone();
    traced_cmp.wall_clock = session_metrics.wall_clock;
    assert_eq!(
        traced_cmp, session_metrics,
        "trace_overhead: tracing perturbed session_reachability_30"
    );
    let budget = session_wall.mul_f64(1.3) + std::time::Duration::from_millis(2);
    assert!(
        traced_wall <= budget,
        "trace_overhead: traced run took {traced_wall:?}, budget {budget:?} \
         (untraced {session_wall:?})"
    );
    eprintln!(
        "trace_overhead ok: untraced {:.3}ms, traced {:.3}ms (budget {:.3}ms)",
        session_wall.as_secs_f64() * 1_000.0,
        traced_wall.as_secs_f64() * 1_000.0,
        budget.as_secs_f64() * 1_000.0
    );

    // The session deployment again over lossy links: a seeded fault plan
    // drops, duplicates and delays frames while the reliability layer
    // (per-link send buffers, cumulative acks, retransmission with
    // exponential backoff) recovers every loss, so the fixpoint
    // re-converges to `session_reachability_30`'s `tuples_stored` exactly
    // — with `frames_dropped > 0` and `retransmits` bounded by the retry
    // budget per frame.  The fault counters must be bit-identical across
    // repetitions (the determinism oracle in `measured` enforces it): every
    // transport decision is a pure function of `(seed, link, seq, attempt)`.
    let (wall, metrics) = measured(
        || {
            pasn_bench::reachability_network(
                30,
                EngineConfig::sendlog_session()
                    .with_cost_model(CostModel::zero_cpu())
                    .with_batching()
                    .with_fault_plan(FaultPlan::new(41)),
                7,
            )
        },
        |net| net.run().expect("post-loss fixpoint"),
    );
    points.push(point_json("lossy_reachability_30", wall, &metrics));

    // `--trace PATH`: export the lossy run's flight-recorder trace — the
    // acceptance bar of the recorder.  Before writing, assert that the
    // frame-lifecycle events reconstruct the transport counters exactly and
    // that tracing left the measured point's counters untouched.
    if let Some(path) = trace_path {
        let mut net = pasn_bench::reachability_network(
            30,
            EngineConfig::sendlog_session()
                .with_cost_model(CostModel::zero_cpu())
                .with_batching()
                .with_fault_plan(FaultPlan::new(41))
                .with_tracing(TraceConfig::new()),
            7,
        );
        let traced = net.run().expect("post-loss fixpoint");
        let mut traced_cmp = traced.clone();
        traced_cmp.wall_clock = metrics.wall_clock;
        assert_eq!(
            traced_cmp, metrics,
            "tracing perturbed lossy_reachability_30"
        );
        let trace = net.trace().expect("tracing enabled");
        let cycles = trace.link_lifecycles();
        let total = |f: fn(&pasn_engine::LinkLifecycle) -> u64| cycles.iter().map(f).sum::<u64>();
        assert_eq!(total(|c| c.shipped), traced.frames, "trace/frames mismatch");
        assert_eq!(
            total(|c| c.dropped),
            traced.frames_dropped,
            "trace/frames_dropped mismatch"
        );
        assert_eq!(
            total(|c| c.duplicated),
            traced.frames_duplicated,
            "trace/frames_duplicated mismatch"
        );
        assert_eq!(
            total(|c| c.retransmits),
            traced.retransmits,
            "trace/retransmits mismatch"
        );
        assert_eq!(total(|c| c.acks), traced.acks, "trace/acks mismatch");
        std::fs::write(path, trace.to_chrome_json()).expect("write trace.json");
        eprintln!(
            "written lossy flight-recorder trace ({} events) to {path}",
            trace.len()
        );
    }

    // The session deployment once more, under network dynamics: one
    // topology link flaps down (provenance-guided deletion withdraws
    // everything derived through it, shipping signed tombstone frames and
    // rebinding the link's session channel) and back up (evaluation
    // re-derives).  The post-churn fixpoint re-converges to
    // `session_reachability_30`'s `tuples_stored` exactly; `derivations`
    // exceeds it by the re-derivation work, which the churn counters
    // itemise.
    let (wall, metrics) = measured(
        || {
            let net = pasn_bench::reachability_network(
                30,
                EngineConfig::sendlog_session()
                    .with_cost_model(CostModel::zero_cpu())
                    .with_batching(),
                7,
            );
            let flap = net.topology().expect("topology-built deployment").links()[0];
            let (src, dst) = (Value::Addr(flap.src.0), Value::Addr(flap.dst.0));
            let script = ChurnScript::new()
                .link_down(5_000_000, src.clone(), dst.clone())
                .link_up(10_000_000, src, dst);
            (net, script)
        },
        |(net, script)| net.run_scenario(script).expect("post-churn fixpoint"),
    );
    points.push(point_json("churn_reachability_30", wall, &metrics));

    // Parallel sharded evaluation: 50 disjoint 20-node reachability
    // clusters (1000 nodes) evaluated sequentially and on a four-worker
    // pool, under the paper's CPU cost model.  The counters must match bit
    // for bit — the pool is a pure execution strategy — while
    // `fixpoint_wall_ms` records the modeled critical path of the
    // partitioned schedule (`RunMetrics::parallel_wall`: total charged CPU
    // minus the work the waves executed off the critical path), which is
    // what shrinks with workers.  CI asserts both the counter equality and
    // the speedup.
    for workers in [1usize, 4] {
        let mut net = pasn_bench::clustered_reachability_network(
            50,
            20,
            EngineConfig::ndlog().with_batching().with_workers(workers),
        );
        let metrics = net.run().expect("fixpoint");
        points.push(point_json(
            &format!("par_reachability_1k_w{workers}"),
            metrics.parallel_wall,
            &metrics,
        ));
    }

    // Store churn (insert / expire / re-insert): the memory-layout paths —
    // seq-ordered expiry, lazy compaction, index maintenance — that the join
    // workloads above never stress.
    let churn_rows = 10_000u32;
    let (wall, metrics) = measured(
        || (),
        |()| {
            let store = pasn_bench::store_churn_cycle(churn_rows);
            RunMetrics {
                tuples_stored: store.total_tuples() as u64,
                store_bytes: store.store_bytes() as u64,
                index_bytes: store.index_bytes() as u64,
                ..RunMetrics::default()
            }
        },
    );
    points.push(point_json(
        &format!("store_churn_{churn_rows}"),
        wall,
        &metrics,
    ));

    // Sustained expiry churn: eight full soft-state generations through one
    // store, proving compaction debt amortises against removals (the
    // `compaction_walked` gauge) and that the peak footprint stays O(one
    // generation) rather than O(history).
    let churn_generations = 8u32;
    let (wall, metrics) = measured_reps(
        2,
        || (),
        |()| {
            let report = pasn_bench::sustained_expiry_churn(churn_rows, churn_generations);
            RunMetrics {
                tuples_stored: report.store.total_tuples() as u64,
                retractions: report.expired,
                compaction_walked: report.compaction_walked,
                store_bytes: report.store.store_bytes() as u64,
                index_bytes: report.store.index_bytes() as u64,
                peak_store_bytes: report.peak_store_bytes,
                peak_index_bytes: report.peak_index_bytes,
                peak_tuples: report.inserted.min(2 * churn_rows as u64),
                ..RunMetrics::default()
            }
        },
    );
    points.push(point_json(
        &format!("sustained_expiry_churn_{churn_rows}x{churn_generations}"),
        wall,
        &metrics,
    ));

    // Order-of-magnitude scale: the streaming generational reachability
    // workload — 10k nodes full / 1k nodes quick, links arriving and
    // retiring as a time-ordered event stream, derived soft state killed
    // mid-run by scheduled TTL expiry.  Peak memory stays O(live
    // generations) no matter how many generations the run visits, and the
    // counters are bit-identical between the sequential and four-worker
    // schedules — both pinned by CI.
    let scale_clusters = if quick { 50 } else { 500 };
    for workers in [1usize, 4] {
        let (wall, metrics) = measured_reps(
            2,
            || {
                pasn_bench::generational_reachability_workload(
                    scale_clusters,
                    20,
                    EngineConfig::ndlog().with_batching().with_workers(workers),
                )
            },
            |(net, events)| {
                net.run_streaming(events.clone())
                    .expect("streaming fixpoint")
            },
        );
        points.push(point_json(
            &format!("reachability_10k_w{workers}"),
            wall,
            &metrics,
        ));
    }

    // Chord under churn: a stabilised ring (1k members full / 128 quick)
    // runs three phases of HMAC-verified lookups — stable, after every
    // eighth member departs, after they rejoin.  The synthesized counters
    // map hops to messages/derivations and hop verifications to
    // `verifications`; determinism across repetitions is the oracle.
    let chord_nodes = if quick { 128 } else { 1_000 };
    let (wall, metrics) = measured_reps(
        2,
        || (),
        |()| {
            let report = pasn_bench::chord_churn_workload(chord_nodes, 96);
            RunMetrics {
                derivations: report.hops,
                messages: report.hops,
                verifications: report.verified_hops,
                hmac_ops: report.hops + report.verified_hops,
                churn_events: report.churn_events,
                tuples_stored: report.members,
                worker_threads: 1,
                partitions: 1,
                ..RunMetrics::default()
            }
        },
    );
    points.push(point_json("chord_churn_1k", wall, &metrics));

    format!(
        "{{\n  \"bench\": \"engine_fixpoint\",\n  \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n")
    )
}

fn arg_value(args: &[String], key: &str) -> Option<u32> {
    arg_str(args, key).and_then(|v| v.parse().ok())
}

fn arg_str(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
