//! `repro` — regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p pasn-bench --bin repro -- [fig3|fig4|summary|all] [--quick] [--runs K] [--max-n N]
//! ```
//!
//! The full sweep runs the Best-Path query over random topologies of
//! N = 10..100 nodes (average out-degree three) under NDLog, SeNDLog and
//! SeNDLogProv, prints the Figure 3 and Figure 4 series as markdown tables,
//! and reproduces the Section 6 summary statistics (average and at-max-N
//! relative overheads).  Results are also appended to
//! `target/repro_results.md` so they can be pasted into EXPERIMENTS.md.

use pasn::experiment::{
    render_figure, render_summary, run_sweep, summarize, FigureMetric, SweepConfig,
};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let quick = args.iter().any(|a| a == "--quick");
    let runs = arg_value(&args, "--runs").unwrap_or(if quick { 1 } else { 2 });
    let max_n = arg_value(&args, "--max-n").unwrap_or(if quick { 30 } else { 100 });

    let mut config = SweepConfig::default();
    config.runs_per_point = runs;
    config.sizes = (1..=10)
        .map(|i| i * 10)
        .filter(|n| *n <= max_n)
        .collect();
    if config.sizes.is_empty() {
        config.sizes = vec![max_n.max(10)];
    }

    eprintln!(
        "running Best-Path sweep: sizes {:?}, {} run(s) per point, 3 variants ...",
        config.sizes, config.runs_per_point
    );
    let started = std::time::Instant::now();
    let points = run_sweep(&config).expect("sweep completes");
    eprintln!("sweep finished in {:.1}s", started.elapsed().as_secs_f64());

    let mut report = String::new();
    report.push_str(&format!(
        "# Reproduction run ({} sizes × 3 variants × {} runs)\n\n",
        config.sizes.len(),
        config.runs_per_point
    ));

    if what == "fig3" || what == "all" {
        report.push_str("## Figure 3 — query completion time (s), Best-Path query\n\n");
        report.push_str(&render_figure(&points, FigureMetric::CompletionTime));
        report.push('\n');
    }
    if what == "fig4" || what == "all" {
        report.push_str("## Figure 4 — bandwidth utilization (MB), Best-Path query\n\n");
        report.push_str(&render_figure(&points, FigureMetric::Bandwidth));
        report.push('\n');
    }
    if what == "summary" || what == "all" {
        report.push_str("## Section 6 summary statistics\n\n");
        report.push_str(&render_summary(&summarize(&points)));
        report.push('\n');
    }

    println!("{report}");

    if let Ok(mut f) = std::fs::File::create("target/repro_results.md") {
        let _ = f.write_all(report.as_bytes());
        eprintln!("written to target/repro_results.md");
    }
}

fn arg_value(args: &[String], key: &str) -> Option<u32> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
