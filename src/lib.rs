//! Workspace root helper library: re-exports the `pasn` facade so the
//! examples and integration tests in this package have a single import root.
pub use pasn;
pub use pasn_bdd;
pub use pasn_crypto;
pub use pasn_datalog;
pub use pasn_engine;
pub use pasn_net;
pub use pasn_provenance;
