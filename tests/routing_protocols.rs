//! The routing protocols Section 2.1 says the reachability example
//! generalises to: distance-vector and path-vector, executed by the engine
//! and checked against the imperative baselines of `pasn::baseline`.

use pasn::baseline;
use pasn::prelude::*;
use pasn::workload;
use pasn_net::NodeId;
use std::collections::{HashMap, HashSet};

fn fast(config: EngineConfig) -> EngineConfig {
    config.with_cost_model(CostModel::zero_cpu())
}

fn run_program(program: pasn_datalog::Program, topology: Topology) -> SecureNetwork {
    let mut net = SecureNetwork::builder()
        .program(program)
        .topology(topology)
        .config(fast(EngineConfig::ndlog()))
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

/// The pipelined MIN aggregate can leave superseded tuples in the store; the
/// protocol's answer is the minimum per (source, destination).
fn best_costs(net: &SecureNetwork, src: u32) -> HashMap<u32, i64> {
    let mut best: HashMap<u32, i64> = HashMap::new();
    for (t, _) in net.query(&Value::Addr(src), "bestCost") {
        let dst = t.values[1].as_addr().expect("addr");
        let cost = t.values[2].as_int().expect("int");
        let entry = best.entry(dst).or_insert(i64::MAX);
        *entry = (*entry).min(cost);
    }
    best
}

#[test]
fn distance_vector_converges_to_bellman_ford_costs() {
    let topology = workload::evaluation_topology(9, 23);
    let net = run_program(pasn::programs::distance_vector(), topology.clone());
    for &src in topology.nodes() {
        let oracle = baseline::bellman_ford(&topology, src);
        let measured = best_costs(&net, src.0);
        for &dst in topology.nodes() {
            if dst == src {
                continue;
            }
            assert_eq!(
                measured.get(&dst.0).copied(),
                oracle.get(&dst).map(|c| *c as i64),
                "distance vector {src}->{dst}"
            );
        }
    }
}

#[test]
fn distance_vector_agrees_with_best_path_on_costs() {
    // Two different declarative programs (distance vector and Best-Path) must
    // agree on the optimal cost of every pair.
    let topology = workload::evaluation_topology(8, 5);
    let dv = run_program(pasn::programs::distance_vector(), topology.clone());
    let bp = run_program(pasn::programs::best_path(), topology.clone());
    for &src in topology.nodes() {
        // Distance vector has no path information, so on a cyclic topology it
        // also derives a cost for reaching the source itself around a cycle;
        // Best-Path suppresses those with its `f_member` guard.  Compare the
        // protocols on the pairs both define: src ≠ dst.
        let mut dv_costs = best_costs(&dv, src.0);
        dv_costs.remove(&src.0);
        let mut bp_costs: HashMap<u32, i64> = HashMap::new();
        for (t, _) in bp.query(&Value::Addr(src.0), "bestPathCost") {
            let dst = t.values[1].as_addr().unwrap();
            if dst == src.0 {
                continue;
            }
            let cost = t.values[2].as_int().unwrap();
            let entry = bp_costs.entry(dst).or_insert(i64::MAX);
            *entry = (*entry).min(cost);
        }
        assert_eq!(dv_costs, bp_costs, "source {src}");
    }
}

#[test]
fn path_vector_routes_are_loop_free_real_paths() {
    let topology = workload::evaluation_topology(7, 11);
    let net = run_program(pasn::programs::path_vector(), topology.clone());
    let links: HashSet<(u32, u32)> = topology
        .links()
        .iter()
        .map(|l| (l.src.0, l.dst.0))
        .collect();

    let mut checked = 0;
    for (loc, tuple, _) in net.query_all("route") {
        let src = loc.as_addr().unwrap();
        let dst = tuple.values[1].as_addr().unwrap();
        let path = tuple.values[2].as_list().expect("path vector");
        let nodes: Vec<NodeId> = path
            .iter()
            .map(|v| NodeId(v.as_addr().expect("node id")))
            .collect();
        assert_eq!(nodes.first(), Some(&NodeId(src)));
        assert_eq!(nodes.last(), Some(&NodeId(dst)));
        assert!(baseline::is_loop_free(&nodes), "{tuple} carries a loop");
        for hop in nodes.windows(2) {
            assert!(
                links.contains(&(hop[0].0, hop[1].0)),
                "{tuple}: {}->{} is not a link",
                hop[0],
                hop[1]
            );
        }
        checked += 1;
    }
    assert!(checked > 10, "checked {checked} path-vector routes");
}

#[test]
fn path_vector_reaches_exactly_the_reachable_pairs() {
    // The path-vector protocol derives a route for (S, D) iff D is reachable
    // from S — the same relation the reachability program computes, except
    // for the self-pairs a cycle closes: the path-vector `f_member` guard
    // suppresses routes back to the source (simple paths only), while plain
    // reachability happily derives `reachable(S, S)` around a cycle.
    let topology = workload::evaluation_topology(7, 3);
    let pv = run_program(pasn::programs::path_vector(), topology.clone());
    let reach = run_program(pasn::programs::reachability_ndlog(), topology);

    let pairs = |net: &SecureNetwork, predicate: &str| -> HashSet<(u32, u32)> {
        net.query_all(predicate)
            .into_iter()
            .map(|(loc, t, _)| (loc.as_addr().unwrap(), t.values[1].as_addr().unwrap()))
            .collect()
    };
    let routes = pairs(&pv, "route");
    let reachable: HashSet<(u32, u32)> = pairs(&reach, "reachable")
        .into_iter()
        .filter(|(s, d)| s != d)
        .collect();
    assert!(routes.iter().all(|(s, d)| s != d));
    assert_eq!(routes, reachable);
}

#[test]
fn path_vector_policy_filters_routes_through_banned_nodes() {
    // Figure 1's topology: a→b, a→c, b→c.  Node a bans b: the only accepted
    // route to c must be the direct link, and no accepted route may traverse b.
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::path_vector_policy())
        .topology(Topology::paper_figure1())
        .config(fast(EngineConfig::ndlog()))
        .fact(
            Value::Addr(0),
            Tuple::new("avoid", vec![Value::Addr(0), Value::Addr(1)]),
        )
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");

    // a still learns both routes to c ...
    let all_routes = net.query(&Value::Addr(0), "route");
    let to_c: Vec<_> = all_routes
        .iter()
        .filter(|(t, _)| t.values[1] == Value::Addr(2))
        .collect();
    assert_eq!(
        to_c.len(),
        2,
        "a derives both the direct and the via-b route"
    );

    // ... but accepts only those avoiding b.
    let accepted = net.query(&Value::Addr(0), "acceptedRoute");
    assert!(!accepted.is_empty());
    for (tuple, _) in &accepted {
        let path = tuple.values[2].as_list().unwrap();
        assert!(
            !path.contains(&Value::Addr(1)),
            "accepted route {tuple} traverses the banned node"
        );
    }
    // The direct a→c route survives the policy.
    assert!(accepted.iter().any(|(t, _)| t.values[1] == Value::Addr(2)));
}

#[test]
fn path_vector_policy_with_no_ban_accepts_everything_at_that_node() {
    // A node whose `avoid` fact names a node that appears on no path accepts
    // every route it learns.
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::path_vector_policy())
        .topology(Topology::line(4))
        .config(fast(EngineConfig::ndlog()))
        .fact(
            Value::Addr(0),
            Tuple::new("avoid", vec![Value::Addr(0), Value::Addr(99)]),
        )
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    let routes = net.query(&Value::Addr(0), "route").len();
    let accepted = net.query(&Value::Addr(0), "acceptedRoute").len();
    assert_eq!(routes, accepted);
    assert_eq!(routes, 3, "a line of four nodes gives n0 three routes");
}

#[test]
fn distance_vector_provenance_grounds_in_link_facts() {
    // Running the distance-vector protocol with distributed provenance, every
    // best cost traces back to at least one base link tuple.
    let topology = workload::evaluation_topology(6, 9);
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::distance_vector())
        .topology(topology)
        .config(fast(EngineConfig::ndlog()).with_graph_mode(GraphMode::Distributed))
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    let stores = net.distributed_stores();
    let mut checked = 0;
    for (loc, tuple, _) in net.query_all("bestCost") {
        let key = tuple.render_located(Some(0));
        let result = pasn_provenance::traceback(&stores, &loc.to_string(), &key);
        assert!(!result.base_tuples.is_empty(), "no origin for {key}");
        checked += 1;
    }
    assert!(checked > 5);
}
