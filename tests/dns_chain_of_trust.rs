//! Integration tests for the DNSSEC-style overlay: the chain of trust of a
//! resolution is authenticated provenance, and trust policies over the
//! resolved answer behave like the paper's trust-management use case.

use pasn::trust::{TrustEvaluator, TrustPolicy};
use pasn_overlay::dns::{Resolver, SecureDns};
use pasn_provenance::{ProvTag, VarTable};

fn hierarchy() -> SecureDns {
    SecureDns::builder()
        .seed(77)
        .zone("com", ".")
        .zone("org", ".")
        .zone("shop.com", "com")
        .zone("example.org", "org")
        .zone("eu.example.org", "example.org")
        .address("com", "registry.com", 0xc0a8_0001)
        .address("shop.com", "www.shop.com", 0xc0a8_0101)
        .address("example.org", "www.example.org", 0xc0a8_0201)
        .address("eu.example.org", "cdn.eu.example.org", 0xc0a8_0301)
        .text("org", "org", "public interest registry")
        .build()
        .expect("hierarchy builds")
}

#[test]
fn answers_resolve_through_the_right_zones() {
    let dns = hierarchy();
    let resolver = Resolver::anchored_at(&dns).unwrap();

    let cases = [
        ("registry.com", 0xc0a8_0001u32, 2usize),
        ("www.shop.com", 0xc0a8_0101, 3),
        ("www.example.org", 0xc0a8_0201, 3),
        ("cdn.eu.example.org", 0xc0a8_0301, 4),
    ];
    for (name, addr, chain_len) in cases {
        let res = resolver.resolve(&dns, name).expect(name);
        assert_eq!(res.address, addr, "{name}");
        assert_eq!(res.chain.len(), chain_len, "{name}");
        assert_eq!(res.principals().len(), chain_len, "{name}");
    }
}

#[test]
fn every_attack_vector_is_detected() {
    // On-path record rewrite.
    let mut dns = hierarchy();
    dns.tamper_address("shop.com", "www.shop.com", 0x0bad_beef)
        .unwrap();
    let resolver = Resolver::anchored_at(&dns).unwrap();
    assert!(resolver.resolve(&dns, "www.shop.com").is_err());
    // Unrelated zones keep validating.
    assert!(resolver.resolve(&dns, "www.example.org").is_ok());

    // Key substitution below the root.
    let mut dns = hierarchy();
    dns.substitute_zone_key("example.org", 5).unwrap();
    let resolver = Resolver::anchored_at(&dns).unwrap();
    assert!(resolver.resolve(&dns, "www.example.org").is_err());
    assert!(resolver.resolve(&dns, "cdn.eu.example.org").is_err());
    assert!(resolver.resolve(&dns, "www.shop.com").is_ok());

    // Wrong trust anchor rejects everything.
    let dns = hierarchy();
    let resolver = Resolver::new([7u8; 32]);
    assert!(resolver.resolve(&dns, "registry.com").is_err());
}

#[test]
fn resolution_provenance_feeds_the_trust_management_api() {
    let dns = hierarchy();
    let resolver = Resolver::anchored_at(&dns).unwrap();
    let res = resolver.resolve(&dns, "cdn.eu.example.org").unwrap();

    // The chain's vote set is the four zones on the path; a resolver that
    // requires at least as many independent asserting principals as the
    // delegation depth accepts it, a stricter one rejects it.
    let var_table = VarTable::new();
    let evaluator = TrustEvaluator::new(&var_table, Default::default());
    let tag = ProvTag::Vote(res.vote());
    assert!(evaluator.evaluate(&tag, &TrustPolicy::KOfN(4)).is_accept());
    assert!(!evaluator.evaluate(&tag, &TrustPolicy::KOfN(5)).is_accept());

    // Accepting the answer only if a trusted registry is on the chain.
    let org_principal = dns.zone("org").unwrap().principal.0;
    let com_principal = dns.zone("com").unwrap().principal.0;
    assert!(evaluator
        .evaluate(
            &tag,
            &TrustPolicy::TrustedPrincipals([org_principal].into_iter().collect())
        )
        .is_accept());
    // The .com registry never appears in the provenance of an .org answer.
    assert!(!res.principals().iter().any(|p| p.0 == com_principal));
}

#[test]
fn resolution_graph_has_one_delegation_step_per_zone() {
    let dns = hierarchy();
    let resolver = Resolver::anchored_at(&dns).unwrap();
    let res = resolver.resolve(&dns, "www.example.org").unwrap();
    let graph = res.provenance_graph();
    let answer = graph
        .find(&format!("resolved(www.example.org,{})", res.address))
        .unwrap();
    let rendered = graph.render_tree(answer);
    // Two delegations (root→org, org→example.org) plus the final answer.
    assert_eq!(rendered.matches("dns_delegate").count(), 2);
    assert_eq!(rendered.matches("dns_answer").count(), 1);
    // Every witness includes the trust anchor.
    let why = graph.why_provenance(answer);
    for witness in why.witnesses() {
        assert!(witness.contains(&pasn_provenance::BaseTupleId(u64::MAX)));
    }
}
