//! Sampled provenance queries (Section 5, "Sampling"): random moonwalks over
//! the engine's distributed provenance stores, compared against the
//! exhaustive traceback query they approximate.

use pasn::prelude::*;
use pasn::workload;
use pasn_provenance::{moonwalk, traceback, MoonwalkConfig};

fn run_reachability(n: u32, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(
            EngineConfig::ndlog()
                .with_cost_model(CostModel::zero_cpu())
                .with_graph_mode(GraphMode::Distributed),
        )
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

/// The farthest-reaching derived tuple at node 0, as a (location, key) pair.
fn deepest_tuple(net: &SecureNetwork) -> (Value, String) {
    let loc = Value::Addr(0);
    let tuple = net
        .query(&loc, "reachable")
        .into_iter()
        .map(|(t, _)| t)
        .max_by_key(|t| t.values[1].clone())
        .expect("node 0 derives something");
    let key = tuple.render_located(Some(0));
    (loc, key)
}

#[test]
fn moonwalk_origins_are_a_subset_of_the_exhaustive_traceback() {
    let net = run_reachability(10, 41);
    let stores = net.distributed_stores();
    let (loc, key) = deepest_tuple(&net);

    let full = traceback(&stores, &loc.to_string(), &key);
    assert!(!full.base_tuples.is_empty());

    let sampled = moonwalk(
        &stores,
        &loc.to_string(),
        &key,
        &MoonwalkConfig::with_walks(128).seed(3),
    );
    assert!(sampled.hit_rate() > 0.9);
    // Sampling can only surface true origins.
    for base in sampled.base_frequency.keys() {
        assert!(
            full.base_tuples.contains(base),
            "moonwalk reported {base:?} which exhaustive traceback never found"
        );
    }
    assert!(sampled.suspected_origin().is_some());
}

#[test]
fn moonwalk_reads_fewer_records_than_exhaustive_traceback_on_large_graphs() {
    let net = run_reachability(16, 8);
    let stores = net.distributed_stores();
    let (loc, key) = deepest_tuple(&net);

    let full = traceback(&stores, &loc.to_string(), &key);
    // A deliberately small sampling budget.
    let config = MoonwalkConfig {
        walks: 8,
        max_depth: 6,
        seed: 11,
    };
    let sampled = moonwalk(&stores, &loc.to_string(), &key, &config);
    assert!(
        sampled.records_read < full.visited.len() * 2,
        "sampled {} vs exhaustive {}",
        sampled.records_read,
        full.visited.len()
    );
    assert!(sampled.records_read <= 8 * 6);
}

#[test]
fn moonwalks_are_reproducible_and_respect_the_walk_budget() {
    let net = run_reachability(8, 2);
    let stores = net.distributed_stores();
    let (loc, key) = deepest_tuple(&net);
    let config = MoonwalkConfig::with_walks(32).seed(99);
    let a = moonwalk(&stores, &loc.to_string(), &key, &config);
    let b = moonwalk(&stores, &loc.to_string(), &key, &config);
    assert_eq!(a.base_frequency, b.base_frequency);
    assert_eq!(a.walks.len(), 32);
    assert_eq!(a.remote_hops, b.remote_hops);
}

#[test]
fn sampling_policy_reduces_recorded_provenance() {
    // Section 5's other sampling knob: only record provenance for a fraction
    // of derivations.  The distributed stores must shrink accordingly.
    let topology = workload::evaluation_topology(10, 13);
    let run = |sampling| {
        let mut config = EngineConfig::ndlog()
            .with_cost_model(CostModel::zero_cpu())
            .with_graph_mode(GraphMode::Distributed);
        config.sampling = sampling;
        let mut net = SecureNetwork::builder()
            .program(pasn::programs::reachability_ndlog())
            .topology(topology.clone())
            .config(config)
            .build()
            .unwrap();
        net.run().unwrap();
        net.distributed_stores()
            .values()
            .map(|s| s.entry_count())
            .sum::<usize>()
    };
    let always = run(pasn_provenance::SamplingPolicy::always());
    let sampled = run(pasn_provenance::SamplingPolicy::one_in(8));
    assert!(always > 0);
    assert!(
        sampled < always,
        "1-in-8 sampling must record fewer entries ({sampled} vs {always})"
    );
}
