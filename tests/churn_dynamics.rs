//! Network dynamics under churn: scripted link flaps, node failures and
//! scheduled soft-state expiry, with provenance-guided incremental deletion
//! keeping derived state exact — the paper's "soft state under continuous
//! operation" reading, pinned end to end over the facade.

use pasn::prelude::*;
use pasn::workload;
use pasn_net::Topology;
use pasn_provenance::{moonwalk, MoonwalkConfig, ProvenanceKind};

fn fast(config: EngineConfig) -> EngineConfig {
    config.with_cost_model(CostModel::zero_cpu())
}

fn build_n30(config: EngineConfig) -> SecureNetwork {
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(workload::evaluation_topology(30, 7))
        .config(fast(config))
        .build()
        .expect("program compiles")
}

/// Canonically ordered `(values, tag)` renderings of `pred` at `loc`.
fn sorted_rows(net: &SecureNetwork, loc: &Value, pred: &str) -> Vec<String> {
    let mut rows: Vec<String> = net
        .query(loc, pred)
        .into_iter()
        .map(|(t, m)| format!("{:?} {}", t.values, m.tag))
        .collect();
    rows.sort();
    rows
}

/// The acceptance pin: flap one link of the N=30 evaluation deployment down
/// and back up — the same deployment `repro` writes as
/// `churn_reachability_30` — and the post-churn fixpoint must be
/// bit-identical (tuples and tags, canonically ordered) to the run that
/// never flapped.
#[test]
fn churn_reachability_30_reconverges_bit_identically() {
    let config = || EngineConfig::sendlog_session().with_batching();
    let mut stat = build_n30(config());
    let baseline = stat.run().expect("fixpoint");

    let link = stat.topology().expect("topology-built").links()[0];
    let (src, dst) = (Value::Addr(link.src.0), Value::Addr(link.dst.0));
    let script = ChurnScript::new()
        .link_down(5_000_000, src.clone(), dst.clone())
        .link_up(10_000_000, src, dst);

    let mut flapped = build_n30(config());
    let metrics = flapped.run_scenario(&script).expect("post-churn fixpoint");

    for loc in flapped.engine().locations().to_vec() {
        assert_eq!(
            sorted_rows(&flapped, &loc, "reachable"),
            sorted_rows(&stat, &loc, "reachable"),
            "post-flap reachable set diverged at {loc}"
        );
        assert_eq!(
            sorted_rows(&flapped, &loc, "link"),
            sorted_rows(&stat, &loc, "link"),
        );
    }
    assert_eq!(metrics.tuples_stored, baseline.tuples_stored);
    // The flap genuinely exercised deletion and re-derivation, with the
    // remote withdrawals shipped as authenticated tombstone frames.
    assert_eq!(metrics.churn_events, 2);
    assert!(metrics.retractions > 0, "{metrics}");
    assert!(metrics.rederivations > 0, "{metrics}");
    assert!(metrics.tombstone_frames > 0, "{metrics}");
    assert!(metrics.derivations >= baseline.derivations);
    // The flapped link's session channel was evicted and rebound at a
    // fresh epoch; nothing was refused along the way.
    assert!(metrics.handshakes > baseline.handshakes, "{metrics}");
    assert_eq!(metrics.verification_failures, 0, "{metrics}");
}

/// Provenance-exact survival: with `DerivationCount` tags, a tuple that
/// loses one of two derivations survives with a decremented tag; losing
/// the last one cascades it away.
#[test]
fn retraction_decrements_derivation_counts() {
    let build = || {
        SecureNetwork::builder()
            .program(pasn::programs::reachability_ndlog())
            .topology(Topology::paper_figure1())
            .config(fast(
                EngineConfig::ndlog().with_provenance(ProvenanceKind::Count),
            ))
            .build()
            .unwrap()
    };
    let reach_ac = Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(2)]);
    let link_ac = Tuple::new("link", vec![Value::Addr(0), Value::Addr(2)]);

    let mut net = build();
    net.run().unwrap();
    assert_eq!(
        net.render_provenance(&Value::Addr(0), &reach_ac).unwrap(),
        "<2 derivations>"
    );

    let mut churned = build();
    let script = ChurnScript::new().at(
        5_000_000,
        ChurnEvent::Retract {
            location: Value::Addr(0),
            tuple: link_ac,
        },
    );
    churned.run_scenario(&script).unwrap();
    assert_eq!(
        churned
            .render_provenance(&Value::Addr(0), &reach_ac)
            .unwrap(),
        "<1 derivations>",
        "the surviving alternative derivation keeps the tuple with a \
         decremented DerivationCount"
    );
}

/// Scheduled expiry: with a TTL configured and dynamics armed, derived
/// soft state dies *during* the run — no manual `expire_all` — and the
/// deletions cascade through the ledger.
#[test]
fn soft_state_expires_mid_run_without_manual_sweeps() {
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(Topology::ring(5))
        .config(fast(EngineConfig::ndlog().with_default_ttl_us(2_000_000)))
        .build()
        .unwrap();
    let metrics = net.run_scenario(&ChurnScript::new()).unwrap();
    for loc in net.engine().locations().to_vec() {
        assert_eq!(net.query(&loc, "reachable").len(), 0, "soft state at {loc}");
        // A ring is bidirectional: each node keeps its two base links.
        assert_eq!(net.query(&loc, "link").len(), 2, "hard state at {loc}");
    }
    assert!(metrics.retractions > 0);
}

/// The forensic guarantee under churn: a tuple deleted mid-run stays
/// explainable.  Its distributed pointer records survive (offline
/// provenance outlives the soft state it describes), so a moonwalk still
/// funnels to the true origin, and the offline archive holds the tuple
/// stamped with its deletion time.
#[test]
fn moonwalk_explains_a_tuple_deleted_mid_run() {
    let mut config = fast(EngineConfig::ndlog())
        .with_graph_mode(GraphMode::Distributed)
        .with_provenance(ProvenanceKind::Condensed);
    config.archive_offline = true;
    // A 4-node line: n0 → n1 → n2 → n3.  reachable(@0,3) exists only via
    // the chain, so retracting link(2,3) deletes it.
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(Topology::line(4))
        .config(config)
        .build()
        .unwrap();
    let script = ChurnScript::new().at(
        5_000_000,
        ChurnEvent::Retract {
            location: Value::Addr(2),
            tuple: Tuple::new("link", vec![Value::Addr(2), Value::Addr(3)]),
        },
    );
    let metrics = net.run_scenario(&script).unwrap();

    // The tuple is really gone from the soft state...
    let reach_03 = Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(3)]);
    assert!(!net
        .query(&Value::Addr(0), "reachable")
        .iter()
        .any(|(t, _)| *t == reach_03));
    assert!(metrics.retractions > 0);

    // ...but its provenance is still walkable: the moonwalk funnels back
    // to base links of the chain that derived it.
    let stores = net.distributed_stores();
    let key = reach_03.render_located(Some(0));
    let sampled = moonwalk(
        &stores,
        &Value::Addr(0).to_string(),
        &key,
        &MoonwalkConfig::with_walks(64).seed(5),
    );
    assert!(
        sampled.hit_rate() > 0.5,
        "deleted tuple no longer explainable: hit rate {}",
        sampled.hit_rate()
    );
    assert!(sampled.suspected_origin().is_some());

    // And the offline archive recorded the deletion itself.
    let archive = net.archive(&Value::Addr(0)).expect("known location");
    let entries = archive.query(&key, None, None);
    assert!(!entries.is_empty(), "archive lost the deleted tuple");
    assert!(
        entries.iter().all(|e| e.expired_at.is_some()),
        "deletion time not stamped: {entries:?}"
    );
}

/// A node failure withdraws everything the node asserted; its rejoin
/// restores the fixpoint.
#[test]
fn node_failure_and_rejoin_restore_the_fixpoint() {
    let build = || {
        SecureNetwork::builder()
            .program(pasn::programs::reachability_ndlog())
            .topology(Topology::ring(6))
            .config(fast(EngineConfig::sendlog().with_batching()))
            .build()
            .unwrap()
    };
    let mut stat = build();
    let baseline = stat.run().unwrap();

    let script = ChurnScript::new()
        .node_fail(5_000_000, Value::Addr(2))
        .node_rejoin(10_000_000, Value::Addr(2));
    let mut churned = build();
    let metrics = churned.run_scenario(&script).unwrap();

    for loc in churned.engine().locations().to_vec() {
        assert_eq!(
            sorted_rows(&churned, &loc, "reachable"),
            sorted_rows(&stat, &loc, "reachable"),
            "post-rejoin fixpoint at {loc}"
        );
    }
    assert_eq!(metrics.tuples_stored, baseline.tuples_stored);
    assert!(metrics.retractions > 0);
    assert!(metrics.rederivations > 0);
}
