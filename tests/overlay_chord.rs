//! Integration tests for the secure Chord overlay (the paper's future-work
//! "secure Chord routing"): routing correctness under churn, authenticated
//! lookups, and trust policies evaluated over lookup provenance.

use pasn::trust::{TrustEvaluator, TrustPolicy};
use pasn_overlay::chord::{ChordConfig, ChordRing};
use pasn_provenance::{ProvTag, VarTable};
use std::collections::BTreeSet;

fn ring(nodes: u32, level: pasn_crypto::SaysLevel) -> ChordRing {
    ChordRing::build(ChordConfig {
        nodes,
        bits: 24,
        says_level: level,
        modulus_bits: 512,
        seed: 1234,
        successor_list_len: 3,
    })
    .expect("ring builds")
}

#[test]
fn every_node_resolves_every_key_to_the_same_owner() {
    let ring = ring(20, pasn_crypto::SaysLevel::Cleartext);
    for i in 0..10 {
        let key = ring.space().key_id(&format!("object-{i}"));
        let owner = ring.successor_of(key);
        for origin in ring.node_ids() {
            let trace = ring.lookup(origin, key).expect("lookup succeeds");
            assert_eq!(trace.owner, owner, "origin {origin} key object-{i}");
            assert!(ring.verify_lookup(&trace).is_ok());
        }
    }
}

#[test]
fn stored_values_survive_churn_and_keep_their_inserter_attribution() {
    let mut ring = ring(16, pasn_crypto::SaysLevel::Hmac);
    let inserter = ring.node_ids()[4];
    let inserter_principal = ring.principal_of(inserter).unwrap();
    for i in 0..8 {
        ring.put(
            inserter,
            &format!("file-{i}"),
            format!("payload-{i}").as_bytes(),
        )
        .expect("put succeeds");
    }

    // Remove a quarter of the ring (never the inserter) and repair.
    let victims: Vec<_> = ring
        .node_ids()
        .into_iter()
        .filter(|id| *id != inserter)
        .take(4)
        .collect();
    for victim in victims {
        ring.remove_node(victim).unwrap();
    }
    ring.stabilize();

    let querier = ring.node_ids()[0];
    let mut recovered = 0;
    for i in 0..8 {
        if let Ok(result) = ring.get(querier, &format!("file-{i}")) {
            assert_eq!(result.value.value, format!("payload-{i}").as_bytes());
            assert_eq!(result.value.inserted_by, inserter_principal);
            assert!(ring.verify_lookup(&result.trace).is_ok());
            recovered += 1;
        }
    }
    // With a successor list of three, losing four nodes can orphan at most a
    // couple of keys; the bulk must survive.
    assert!(
        recovered >= 6,
        "only {recovered}/8 values survived the churn"
    );
}

#[test]
fn lookup_provenance_supports_kofn_trust_decisions() {
    let ring = ring(24, pasn_crypto::SaysLevel::Hmac);
    let origin = ring.node_ids()[0];
    let key = ring.space().key_id("kofn-object");
    let trace = ring.lookup(origin, key).unwrap();

    // The vote over the lookup path is exactly the set of distinct
    // forwarding principals.
    let vote = trace.vote();
    let principals: BTreeSet<u32> = trace.principals().iter().map(|p| p.0).collect();
    assert_eq!(vote.principals(), &principals);
    assert!(vote.satisfies_threshold(1));
    assert!(!vote.satisfies_threshold(principals.len() + 1));

    // The same decision through the core trust-management API: a vote tag is
    // accepted under MinimumVotes(k) for k ≤ path length and rejected above.
    let var_table = VarTable::new();
    let evaluator = TrustEvaluator::new(&var_table, Default::default());
    let tag = ProvTag::Vote(vote.clone());
    assert!(evaluator
        .evaluate(&tag, &TrustPolicy::KOfN(principals.len()))
        .is_accept());
    assert!(!evaluator
        .evaluate(&tag, &TrustPolicy::KOfN(principals.len() + 1))
        .is_accept());
}

#[test]
fn authenticated_lookup_graphs_verify_and_expose_forgery() {
    let ring = ring(12, pasn_crypto::SaysLevel::Hmac);
    let origin = ring.node_ids()[3];
    let key = ring.space().key_id("graph-check");
    let trace = ring.lookup(origin, key).unwrap();
    let graph = ring.authenticated_lookup_graph(&trace).unwrap();

    let result_key = format!("lookupResult({:#x},{:#x})", key.0, trace.owner.0);
    let root = graph.find(&result_key).expect("result recorded");

    // All assertions verify with the ring's keys.
    let verifier_keyring = ring
        .authority()
        .keyring_for(ring.principal_of(origin).unwrap())
        .unwrap();
    let verifier = pasn_crypto::Authenticator::new(verifier_keyring, ring.says_level());
    let failures = graph.verify_assertions(root, true, |_, payload, assertion| {
        verifier.verify(payload, assertion).is_ok()
    });
    assert!(failures.is_empty(), "failures: {failures:?}");

    // A graph built without signatures fails the same strict check.
    let unsigned = trace.provenance_graph(ring.principal_of(trace.owner).unwrap());
    let unsigned_root = unsigned.find(&result_key).unwrap();
    let failures = unsigned.verify_assertions(unsigned_root, true, |_, payload, assertion| {
        verifier.verify(payload, assertion).is_ok()
    });
    assert!(
        !failures.is_empty(),
        "unsigned derivations must fail strict authenticated-provenance checks"
    );
}

#[test]
fn hop_counts_scale_logarithmically_with_ring_size() {
    let small = ring(8, pasn_crypto::SaysLevel::Cleartext);
    let large = ring(64, pasn_crypto::SaysLevel::Cleartext);
    let (avg_small, max_small) = small.lookup_hop_stats(64).unwrap();
    let (avg_large, max_large) = large.lookup_hop_stats(64).unwrap();
    // Eight times the nodes should cost only a few extra hops, not 8×.
    assert!(avg_large < avg_small * 3.0, "{avg_small} -> {avg_large}");
    assert!(max_large <= 2 * 6 + 1, "max hops {max_large}"); // 2·log2(64) + 1
    assert!(max_small <= 2 * 3 + 1, "max hops {max_small}");
}

#[test]
fn says_level_changes_proof_overhead_but_not_routing() {
    let cleartext = ring(10, pasn_crypto::SaysLevel::Cleartext);
    let rsa = ChordRing::build(ChordConfig {
        nodes: 10,
        bits: 24,
        says_level: pasn_crypto::SaysLevel::Rsa,
        modulus_bits: 512,
        seed: 1234,
        successor_list_len: 3,
    })
    .unwrap();

    let key = cleartext.space().key_id("same-key");
    assert_eq!(cleartext.successor_of(key), rsa.successor_of(key));

    let origin = cleartext.node_ids()[0];
    let trace_clear = cleartext.lookup(origin, key).unwrap();
    let trace_rsa = rsa.lookup(origin, key).unwrap();
    assert_eq!(trace_clear.hop_count(), trace_rsa.hop_count());
    assert_eq!(trace_clear.owner, trace_rsa.owner);

    // RSA proofs are materially larger than cleartext headers.
    let clear_bytes: usize = trace_clear
        .hops
        .iter()
        .map(|h| h.assertion.wire_len())
        .sum();
    let rsa_bytes: usize = trace_rsa.hops.iter().map(|h| h.assertion.wire_len()).sum();
    assert!(rsa_bytes > clear_bytes + 32 * trace_rsa.hop_count());
}
