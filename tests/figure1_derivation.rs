//! Integration test for Figure 1: the NDlog derivation tree of
//! `reachable(@a,c)` on the three-node example network, reconstructed through
//! the public `pasn` API with local (piggybacked) provenance.

use pasn::prelude::*;

fn figure1_network(config: EngineConfig) -> SecureNetwork {
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(Topology::paper_figure1())
        .config(
            config
                .with_cost_model(CostModel::zero_cpu())
                .with_graph_mode(GraphMode::Local),
        )
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

#[test]
fn reachable_a_c_has_the_two_derivations_of_figure1() {
    let net = figure1_network(EngineConfig::ndlog());
    let a = Value::Addr(0);
    let graph = net
        .provenance_graph(&a)
        .expect("local provenance maintained");
    let root = graph
        .find("reachable(@n0,n2)")
        .expect("reachable(a,c) derived at a");

    // Two alternative derivations: r1 over link(a,c) and r2 over link(a,b)
    // joined with reachable(b,c).
    let node = graph.node(root);
    assert_eq!(node.derivations.len(), 2, "union of r1 and r2");
    let rules: Vec<&str> = node.derivations.iter().map(|d| d.rule.as_str()).collect();
    assert!(rules.contains(&"r1"));
    assert!(rules.contains(&"r2"));

    // The leaves are exactly the three base links of the example network.
    let support = graph.base_support(root);
    assert_eq!(support.len(), 3);

    // The rendered tree shows the union and the base tuples, like Figure 1.
    let tree = graph.render_tree(root);
    assert!(tree.contains("union"), "{tree}");
    assert!(tree.contains("link(@n0,n2) [base]"), "{tree}");
    assert!(tree.contains("link(@n0,n1) [base]"), "{tree}");
    assert!(tree.contains("link(@n1,n2) [base]"), "{tree}");
    assert!(tree.contains("reachable(@n1,n2)"), "{tree}");
}

#[test]
fn every_node_gets_locally_complete_provenance() {
    let net = figure1_network(EngineConfig::ndlog());
    // Node a reaches b and c; both tuples have complete local provenance.
    let a = Value::Addr(0);
    let graph = net.provenance_graph(&a).unwrap();
    for (tuple, _) in net.query(&a, "reachable") {
        let key = tuple.render_located(Some(0));
        let id = graph
            .find(&key)
            .unwrap_or_else(|| panic!("missing provenance for {key}"));
        assert!(
            !graph.base_support(id).is_empty(),
            "{key} grounded in base tuples"
        );
    }
}

#[test]
fn reachability_results_match_the_example_topology() {
    let net = figure1_network(EngineConfig::ndlog());
    // a reaches {b, c}, b reaches {c}, c reaches nothing.
    assert_eq!(net.query(&Value::Addr(0), "reachable").len(), 2);
    assert_eq!(net.query(&Value::Addr(1), "reachable").len(), 1);
    assert_eq!(net.query(&Value::Addr(2), "reachable").len(), 0);
    // The Figure 1 derivations above were produced through index probes:
    // both localized joins of r2 key on the shared location variable.
    let metrics = net.engine().metrics();
    assert!(
        metrics.index_probes > 0 && metrics.index_hits > 0,
        "joins must take the index path ({} probes / {} hits)",
        metrics.index_probes,
        metrics.index_hits
    );
}
