//! Shape checks for the paper's evaluation claims (Section 6), at a scale
//! small enough for the test suite:
//!
//! 1. `NDLog < SeNDLog < SeNDLogProv` in both completion time and bandwidth;
//! 2. the relative overheads shrink as the network grows;
//! 3. the extra bandwidth is attributable to signatures (SeNDLog) and to
//!    provenance annotations (SeNDLogProv).

use pasn::experiment::{run_point, summarize, ExperimentPoint, SweepConfig};
use pasn::prelude::*;
use pasn_net::CostModel;

fn sweep(sizes: &[u32]) -> Vec<ExperimentPoint> {
    let config = SweepConfig {
        sizes: sizes.to_vec(),
        runs_per_point: 1,
        seed: 0xabcd,
        rsa_modulus_bits: 512,
    };
    let mut points = Vec::new();
    for &n in sizes {
        for variant in SystemVariant::ALL {
            points.push(run_point(n, variant, &config, CostModel::paper_2008()).unwrap());
        }
    }
    points
}

#[test]
fn variants_are_ordered_and_overheads_shrink_with_n() {
    let points = sweep(&[8, 24]);
    let get = |n: u32, name: &str| {
        points
            .iter()
            .find(|p| p.n == n && p.variant == name)
            .cloned()
            .unwrap()
    };

    for n in [8u32, 24] {
        let nd = get(n, "NDLog");
        let se = get(n, "SeNDLog");
        let sp = get(n, "SeNDLogProv");
        assert!(
            nd.completion_secs < se.completion_secs && se.completion_secs <= sp.completion_secs,
            "completion ordering at N={n}: {} / {} / {}",
            nd.completion_secs,
            se.completion_secs,
            sp.completion_secs
        );
        assert!(
            nd.megabytes < se.megabytes && se.megabytes < sp.megabytes,
            "bandwidth ordering at N={n}"
        );
        assert_eq!(nd.signatures, 0.0);
        assert!(se.signatures > 0.0);
    }

    // The paper's headline observation is that the *relative* overheads do
    // not grow with the network: per-tuple crypto and provenance costs are
    // constant while the baseline query cost grows with the join state.  At
    // the small scales used in the test suite we check that the overhead at
    // the larger N stays within a modest factor of the sweep average (the
    // full-scale trend is produced by `cargo run --release -p pasn-bench
    // --bin repro` and recorded in EXPERIMENTS.md).
    let summary = summarize(&points);
    assert_eq!(summary.max_n, 24);
    assert!(
        summary.sendlog_time_overhead_at_max <= summary.sendlog_time_overhead * 1.5,
        "SeNDLog time overhead at N=24 ({:.2}) should not blow up past the sweep average ({:.2})",
        summary.sendlog_time_overhead_at_max,
        summary.sendlog_time_overhead
    );
    assert!(
        summary.sendlog_bandwidth_overhead_at_max <= summary.sendlog_bandwidth_overhead * 1.5,
        "SeNDLog bandwidth overhead should not grow with N"
    );
    assert!(summary.sendlog_time_overhead > 0.0);
    assert!(summary.prov_bandwidth_overhead > 0.0);
    assert!(summary.prov_time_overhead >= 0.0);
}

#[test]
fn extra_bandwidth_is_attributable_to_auth_and_provenance() {
    let run = |variant: SystemVariant| {
        let topology = pasn::workload::evaluation_topology(10, 77);
        let mut config = variant.config();
        config.cost_model = CostModel::zero_cpu();
        let mut net = SecureNetwork::builder()
            .program(pasn::programs::best_path())
            .topology(topology)
            .config(config)
            .build()
            .unwrap();
        net.run().unwrap()
    };
    let nd = run(SystemVariant::NDLog);
    let se = run(SystemVariant::SeNDLog);
    let sp = run(SystemVariant::SeNDLogProv);

    // Same query, same topology: the derivation counts agree.
    assert_eq!(nd.derivations, se.derivations);
    assert_eq!(se.derivations, sp.derivations);
    assert_eq!(nd.messages, se.messages);

    // The bandwidth gap between NDLog and SeNDLog equals the signature bytes.
    assert_eq!(se.bytes - nd.bytes, se.auth_bytes);
    assert_eq!(nd.auth_bytes, 0);
    // The gap between SeNDLog and SeNDLogProv equals the provenance bytes.
    assert_eq!(sp.bytes - se.bytes, sp.provenance_bytes);
    assert_eq!(se.provenance_bytes, 0);
}
