//! Integration tests for session-keyed authenticated channels
//! (`SaysLevel::Session`): the N=30 reachability deployment of the repro's
//! `session_reachability_30` point, checked end to end against the
//! per-frame-RSA baseline it amortises.

use pasn::prelude::*;
use pasn::workload;
use pasn_crypto::channel::{HandshakeTranscript, CHANNEL_PROOF_LEN};
use pasn_crypto::says::SaysLevel;
use pasn_crypto::PrincipalId;

fn reachability_30(config: EngineConfig) -> SecureNetwork {
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(workload::evaluation_topology(30, 7))
        .config(config.with_cost_model(CostModel::zero_cpu()))
        .build()
        .unwrap()
}

/// The acceptance bar of the session-channel work: on the batched N=30
/// deployment, `SaysLevel::Session` performs exactly `handshakes` RSA signs
/// — one per live directed link, far below the per-frame count — while the
/// evaluation itself (fixpoint, derivations, orderings, frame stream) is
/// bit-identical to the `Rsa` level.
#[test]
fn session_channels_amortise_rsa_on_the_n30_deployment() {
    let mut rsa_net = reachability_30(EngineConfig::sendlog().with_batching());
    let rsa = rsa_net.run().unwrap();
    let mut session_net = reachability_30(EngineConfig::sendlog_session().with_batching());
    let session = session_net.run().unwrap();

    // The evaluation is unchanged, bit for bit.
    assert_eq!(session.derivations, rsa.derivations);
    assert_eq!(session.tuples_stored, rsa.tuples_stored);
    assert_eq!(session.frames, rsa.frames);
    assert_eq!(session.batched_tuples, rsa.batched_tuples);
    for loc in rsa_net.engine().locations().to_vec() {
        let want: Vec<Tuple> = rsa_net
            .query_ordered(&loc, "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let got: Vec<Tuple> = session_net
            .query_ordered(&loc, "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(got, want, "insertion ordering diverged at {loc}");
    }

    // RSA collapses from one sign per frame to one per live directed link.
    assert_eq!(rsa.rsa_sign_ops, rsa.frames);
    assert_eq!(session.rsa_sign_ops, session.handshakes);
    assert_eq!(session.rsa_verify_ops, session.handshakes);
    assert!(session.handshakes > 0);
    assert!(
        session.handshakes * 2 < session.frames,
        "{} handshakes (live directed links) should sit well below {} frames",
        session.handshakes,
        session.frames
    );
    // Every frame still carries exactly one proof (now an HMAC) and passes
    // exactly one verification; the handshakes ride the wire on top.
    assert_eq!(session.signatures, session.frames);
    assert_eq!(session.verifications, session.frames);
    assert_eq!(session.verification_failures, 0);
    assert!(session.hmac_ops >= 2 * session.frames);
    assert_eq!(session.messages, session.frames + session.handshakes);
    // Auth bandwidth is accounted honestly: every frame's channel MAC
    // (principal id + proof-tag byte + epoch/counter/tag) plus every
    // handshake's transcript and RSA signature — channel setup is on the
    // books, not hidden.
    let proof_wire = 4 + 1 + CHANNEL_PROOF_LEN as u64;
    let handshake_wire = HandshakeTranscript {
        src: PrincipalId(0),
        dst: PrincipalId(1),
        epoch: 0,
    }
    .wire_len() as u64
        + (session_net.engine().config().rsa_modulus_bits as u64) / 8;
    assert_eq!(
        session.auth_bytes,
        session.frames * proof_wire + session.handshakes * handshake_wire
    );
}

/// `EngineConfig::sendlog_session()` is `sendlog()` with the level swapped:
/// authentication stays on, imports verified, and the facade surfaces the
/// crypto counters.
#[test]
fn session_preset_and_counters_round_trip_through_the_facade() {
    let mut net = reachability_30(EngineConfig::sendlog_session().with_batching());
    assert_eq!(net.engine().config().says_level, Some(SaysLevel::Session));
    let m = net.run().unwrap();
    assert_eq!(net.rsa_sign_ops(), m.rsa_sign_ops);
    assert_eq!(net.rsa_verify_ops(), m.rsa_verify_ops);
    assert_eq!(net.hmac_ops(), m.hmac_ops);
    assert_eq!(net.handshakes(), m.handshakes);
    assert_eq!(net.frames(), m.frames);
}

/// Forcing rebinds (tiny channel lifetime) degenerates to per-frame RSA
/// again without disturbing the fixpoint — the explicit rebind-on-expiry
/// path at deployment scale.
#[test]
fn rebinding_every_frame_degenerates_to_per_frame_rsa() {
    let mut unlimited = reachability_30(EngineConfig::sendlog_session().with_batching());
    let base = unlimited.run().unwrap();
    let mut churny = reachability_30(
        EngineConfig::sendlog_session()
            .with_batching()
            .with_channel_rebind_frames(1),
    );
    let m = churny.run().unwrap();
    assert_eq!(m.handshakes, m.frames);
    assert_eq!(m.rsa_sign_ops, m.frames);
    assert!(m.handshakes > base.handshakes);
    assert_eq!(m.derivations, base.derivations);
    assert_eq!(m.tuples_stored, base.tuples_stored);
    assert_eq!(m.verification_failures, 0);
}
