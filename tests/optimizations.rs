//! Integration tests for the Section 5 optimisation knobs, exercised through
//! the public API: proactive vs reactive provenance, sampling, provenance
//! granularity, and the soft-state / online-provenance lifecycle.

use pasn::prelude::*;
use pasn::workload;
use pasn_provenance::{Granularity, MaintenanceMode, SamplingPolicy};

fn build(config: EngineConfig, n: u32, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config.with_cost_model(CostModel::zero_cpu()))
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

#[test]
fn reactive_provenance_defers_work_until_materialisation() {
    let mut proactive_cfg = EngineConfig::ndlog().with_graph_mode(GraphMode::Distributed);
    proactive_cfg.maintenance = MaintenanceMode::Proactive;
    let mut reactive_cfg = proactive_cfg.clone();
    reactive_cfg.maintenance = MaintenanceMode::Reactive;

    let proactive = build(proactive_cfg, 8, 3);
    let mut reactive = build(reactive_cfg, 8, 3);

    let count_entries = |net: &SecureNetwork| {
        net.distributed_stores()
            .values()
            .map(|s| s.entry_count())
            .sum::<usize>()
    };

    // Before materialisation the reactive deployment has only base records.
    let proactive_entries = count_entries(&proactive);
    let reactive_before = count_entries(&reactive);
    assert!(reactive_before < proactive_entries);

    // A network event triggers materialisation; afterwards the reactive
    // deployment holds at least the proactive deployment's derivation
    // records (it may hold more "recv" pointers than base-only).
    let materialised = reactive.engine_mut().materialize_provenance();
    assert!(materialised > 0);
    let reactive_after = count_entries(&reactive);
    assert!(reactive_after >= proactive_entries);

    // And traceback works after materialisation.
    let stores = reactive.distributed_stores();
    let (loc, tuple, _) = reactive.query_all("reachable").into_iter().next().unwrap();
    let result =
        pasn_provenance::traceback(&stores, &loc.to_string(), &tuple.render_located(Some(0)));
    assert!(!result.base_tuples.is_empty());
}

#[test]
fn sampling_reduces_recorded_provenance() {
    let mut full_cfg = EngineConfig::ndlog().with_graph_mode(GraphMode::Distributed);
    full_cfg.sampling = SamplingPolicy::always();
    let mut sampled_cfg = full_cfg.clone();
    sampled_cfg.sampling = SamplingPolicy::one_in(8);

    let full = build(full_cfg, 10, 11);
    let sampled = build(sampled_cfg, 10, 11);

    let entries = |net: &SecureNetwork| {
        net.distributed_stores()
            .values()
            .map(|s| s.entry_count())
            .sum::<usize>()
    };
    assert!(
        entries(&sampled) < entries(&full),
        "sampling must record strictly less provenance ({} vs {})",
        entries(&sampled),
        entries(&full)
    );
    // The routing results themselves are unaffected by sampling.
    assert_eq!(
        full.query_all("reachable").len(),
        sampled.query_all("reachable").len()
    );
    assert!(sampled.engine().metrics().sampled_out > 0);
}

#[test]
fn as_granularity_collapses_condensed_origins() {
    let node_cfg = EngineConfig::ndlog().with_provenance(ProvenanceKind::Condensed);
    let mut as_cfg = node_cfg.clone();
    // Group the 9 nodes into ASes of three consecutive nodes each.
    as_cfg.granularity = Granularity::uniform_as(9, 3);

    let node_level = build(node_cfg, 9, 5);
    let as_level = build(as_cfg, 9, 5);

    let distinct_origins = |net: &SecureNetwork| {
        let evaluator = TrustEvaluator::new(net.var_table(), Default::default());
        let mut all = std::collections::BTreeSet::new();
        for (_, _, meta) in net.query_all("reachable") {
            all.extend(evaluator.origins(&meta.tag));
        }
        all.len()
    };
    let node_origins = distinct_origins(&node_level);
    let as_origins = distinct_origins(&as_level);
    assert!(node_origins > 3, "node granularity sees individual nodes");
    assert!(
        as_origins <= 3,
        "AS granularity sees at most 3 ASes, saw {as_origins}"
    );
}

#[test]
fn online_provenance_follows_soft_state_lifetimes() {
    let config = EngineConfig::ndlog()
        .with_graph_mode(GraphMode::Local)
        .with_default_ttl_us(1_000_000);
    let mut net = build(config, 6, 2);

    let loc = Value::Addr(0);
    let live_before = net.query(&loc, "reachable").len();
    assert!(live_before > 0);
    let graph_before = net.provenance_graph(&loc).unwrap().len();
    assert!(graph_before > 0);

    // After the TTL passes, both the tuples and their online provenance are
    // gone; base links (hard state) survive.
    let dropped = net.expire(SimTime::from_secs_f64(30.0));
    assert!(dropped >= live_before);
    assert_eq!(net.query(&loc, "reachable").len(), 0);
    assert!(!net.query(&loc, "link").is_empty());
}

#[test]
fn hmac_says_level_is_cheaper_than_rsa_but_still_adds_bytes() {
    use pasn_crypto::says::SaysLevel;
    let rsa = build(EngineConfig::ndlog().with_says(SaysLevel::Rsa), 8, 9);
    let hmac = build(EngineConfig::ndlog().with_says(SaysLevel::Hmac), 8, 9);
    let clear = build(EngineConfig::ndlog().with_says(SaysLevel::Cleartext), 8, 9);
    let none = build(EngineConfig::ndlog(), 8, 9);

    let (rsa_m, hmac_m, clear_m, none_m) = (
        rsa.engine().metrics(),
        hmac.engine().metrics(),
        clear.engine().metrics(),
        none.engine().metrics(),
    );
    // Same schedule (zero CPU cost model) → same message counts.
    assert_eq!(rsa_m.messages, none_m.messages);
    // Proof bytes ordered by mechanism strength.  A cleartext `says` still
    // carries the 5-byte principal header the paper mentions ("simply append
    // a cleartext principal header to a message"), so it is cheap but not
    // free; only the unauthenticated NDlog baseline adds nothing.
    assert!(rsa_m.auth_bytes > hmac_m.auth_bytes);
    assert!(hmac_m.auth_bytes > clear_m.auth_bytes);
    assert_eq!(clear_m.auth_bytes, 5 * clear_m.messages);
    assert_eq!(none_m.auth_bytes, 0);
    // All variants verified every imported tuple except the unauthenticated one.
    assert_eq!(rsa_m.verifications, rsa_m.messages);
    assert_eq!(none_m.verifications, 0);
}
