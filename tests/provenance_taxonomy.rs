//! Property-style integration tests over the provenance taxonomy (Section 4):
//! whatever the topology, the different provenance axes must stay mutually
//! consistent when computed through the full stack.

use pasn::prelude::*;
use pasn::workload;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn run_reachability(n: u32, seed: u64, config: EngineConfig) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(topology)
        .config(config.with_cost_model(CostModel::zero_cpu()))
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Condensed provenance is always accepted when every principal is
    /// trusted, and always rejected when no principal is trusted.
    #[test]
    fn trust_policy_extremes(n in 4u32..10, seed in 0u64..500) {
        let net = run_reachability(n, seed, EngineConfig::ndlog().with_provenance(ProvenanceKind::Condensed));
        let evaluator = TrustEvaluator::new(net.var_table(), Default::default());
        let everyone: BTreeSet<u32> = (0..n).collect();
        let nobody: BTreeSet<u32> = BTreeSet::new();
        for (_, _, meta) in net.query_all("reachable") {
            prop_assert!(evaluator
                .evaluate(&meta.tag, &TrustPolicy::TrustedPrincipals(everyone.clone()))
                .is_accept());
            prop_assert!(!evaluator
                .evaluate(&meta.tag, &TrustPolicy::TrustedPrincipals(nobody.clone()))
                .is_accept());
        }
    }

    /// The condensed origins of a tuple are a subset of the principals on
    /// the deployment, and always include the tuple's own source node
    /// (the reachability of S is always grounded in one of S's own links).
    #[test]
    fn condensed_origins_are_well_formed(n in 4u32..10, seed in 0u64..500) {
        let net = run_reachability(n, seed, EngineConfig::ndlog().with_provenance(ProvenanceKind::Condensed));
        let evaluator = TrustEvaluator::new(net.var_table(), Default::default());
        for (loc, _, meta) in net.query_all("reachable") {
            let origins = evaluator.origins(&meta.tag);
            prop_assert!(!origins.is_empty());
            prop_assert!(origins.iter().all(|p| *p < n));
            let src = loc.as_addr().unwrap();
            prop_assert!(origins.contains(&src));
        }
    }

    /// Vote provenance never reports more asserting principals than exist,
    /// and the count semiring never reports zero derivations for a stored
    /// tuple.
    #[test]
    fn quantifiable_provenance_is_bounded(n in 4u32..9, seed in 0u64..500) {
        let vote_net = run_reachability(n, seed, EngineConfig::ndlog().with_provenance(ProvenanceKind::Vote));
        for (_, _, meta) in vote_net.query_all("reachable") {
            match &meta.tag {
                ProvTag::Vote(v) => prop_assert!(v.count() <= n as usize),
                other => prop_assert!(false, "unexpected tag {other:?}"),
            }
        }
        let count_net = run_reachability(n, seed, EngineConfig::ndlog().with_provenance(ProvenanceKind::Count));
        for (_, _, meta) in count_net.query_all("reachable") {
            match &meta.tag {
                ProvTag::Count(c) => prop_assert!(c.0 >= 1),
                other => prop_assert!(false, "unexpected tag {other:?}"),
            }
        }
    }

    /// Distributed traceback always reaches at least one base link for every
    /// derived tuple, regardless of topology.
    #[test]
    fn traceback_always_grounds_out(n in 4u32..9, seed in 0u64..500) {
        let net = run_reachability(n, seed, EngineConfig::ndlog().with_graph_mode(GraphMode::Distributed));
        let stores = net.distributed_stores();
        for (loc, tuple, _) in net.query_all("reachable") {
            let key = tuple.render_located(Some(0));
            let result = pasn_provenance::traceback(&stores, &loc.to_string(), &key);
            prop_assert!(
                !result.base_tuples.is_empty(),
                "no origin found for {key} at {loc}"
            );
        }
    }
}

#[test]
fn authentication_does_not_change_results() {
    // The same topology evaluated with and without authentication produces
    // identical reachability relations (security must not alter semantics).
    let plain = run_reachability(8, 99, EngineConfig::ndlog());
    let secure = run_reachability(8, 99, EngineConfig::sendlog());
    let collect = |net: &SecureNetwork| {
        let mut rows: Vec<(String, Vec<Value>)> = net
            .query_all("reachable")
            .into_iter()
            .map(|(l, t, _)| (l.to_string(), t.values))
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(collect(&plain), collect(&secure));
}
