//! Integration tests for batched delta evaluation and signed multi-tuple
//! shipment frames.
//!
//! Three claims are pinned down here: (a) `batch_window = 0` reproduces the
//! seed's per-tuple evaluation bit for bit (the hardcoded counters below
//! were captured from the pre-batching engine); (b) with batching enabled,
//! every frame is signed exactly once and frames undercut the per-tuple
//! message count while the fixpoint is unchanged; and (c) duplicate head
//! tuples inside one pending frame are deduplicated before signing.

use pasn::prelude::*;
use pasn_net::SimTime;

const REACHABLE: &str = "
    r1 reachable(@S,D) :- link(@S,D).
    r2 reachable(@S,D) :- link(@S,Z), reachable(@Z,D).
";

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

/// The paper's Figure 1 deployment (`a → b → c`, `a → c`) with a given
/// configuration (zero-CPU cost model so only transport shapes the clock).
fn figure1(config: EngineConfig) -> SecureNetwork {
    let mut builder = SecureNetwork::builder()
        .program_text(REACHABLE)
        .unwrap()
        .locations(vec![str_val("a"), str_val("b"), str_val("c")])
        .config(config.with_cost_model(CostModel::zero_cpu()));
    for (l, s, d) in [("a", "a", "b"), ("a", "a", "c"), ("b", "b", "c")] {
        builder = builder.fact(str_val(l), Tuple::new("link", vec![str_val(s), str_val(d)]));
    }
    builder.build().unwrap()
}

fn ordered(net: &SecureNetwork, loc: &str, predicate: &str) -> Vec<String> {
    net.query_ordered(&str_val(loc), predicate)
        .into_iter()
        .map(|(t, _)| t.to_string())
        .collect()
}

/// (a) Per-tuple mode (`batch_window = 0`, the default) matches the seed
/// engine's counters and insertion orderings exactly, across all three
/// system variants.  The expected values were captured from the pre-frame
/// tuple-at-a-time evaluator on this exact workload.
#[test]
fn batch_window_zero_matches_seed_counters_and_orderings() {
    // (variant, bytes, auth_bytes, provenance_bytes, signatures, prov_ops)
    let expected = [
        (EngineConfig::ndlog(), 276, 0, 0, 0, 0),
        (EngineConfig::sendlog(), 560, 284, 0, 4, 0),
        (EngineConfig::sendlog_prov(), 588, 284, 28, 4, 18),
    ];
    for (config, bytes, auth, prov, sigs, prov_ops) in expected {
        assert_eq!(config.batch_window_us, 0, "per-tuple is the default");
        let mut net = figure1(config);
        let m = net.run().unwrap();
        assert_eq!(m.completion, SimTime::from_micros(2_000));
        assert_eq!(m.messages, 4);
        assert_eq!(m.bytes, bytes);
        assert_eq!(m.auth_bytes, auth);
        assert_eq!(m.provenance_bytes, prov);
        assert_eq!(m.derivations, 7);
        assert_eq!(m.tuples_stored, 9);
        assert_eq!(m.signatures, sigs);
        assert_eq!(m.verifications, sigs);
        assert_eq!(m.provenance_ops, prov_ops);
        assert_eq!((m.index_probes, m.index_hits, m.scan_probes), (6, 1, 0));
        assert_eq!((m.store_bytes, m.index_bytes), (282, 72));
        // Every frame carries exactly one tuple, one per message.
        assert_eq!(m.frames, 4);
        assert_eq!(m.batched_tuples, 4);
        assert_eq!(m.mean_batch_occupancy(), 1.0);
        // Insertion orderings are the seed's, byte for byte.
        assert_eq!(
            ordered(&net, "a", "reachable"),
            vec!["reachable(a,b)", "reachable(a,c)"]
        );
        assert_eq!(ordered(&net, "b", "reachable"), vec!["reachable(b,c)"]);
        assert!(ordered(&net, "c", "reachable").is_empty());
    }
}

/// (b) Batching signs once per frame: `signatures == frames`, frames
/// undercut the per-tuple message count, bandwidth drops, and the fixpoint
/// tuple sets are unchanged on every node.
#[test]
fn batched_frames_amortise_signatures_without_changing_the_fixpoint() {
    // A 6-node ring: the transitive closure keeps re-deriving through every
    // node, so each node ships several tuples per window.
    let ring = |config: EngineConfig| {
        SecureNetwork::builder()
            .program_text(REACHABLE)
            .unwrap()
            .topology(Topology::ring(6))
            .config(config.with_cost_model(CostModel::zero_cpu()))
            .build()
            .unwrap()
    };
    let mut per_tuple = ring(EngineConfig::sendlog());
    let baseline = per_tuple.run().unwrap();

    let mut batched = ring(EngineConfig::sendlog().with_batching());
    let m = batched.run().unwrap();

    assert_eq!(m.signatures, m.frames);
    assert_eq!(m.verifications, m.frames);
    assert!(
        m.frames < baseline.messages,
        "{} frames vs {} per-tuple messages",
        m.frames,
        baseline.messages
    );
    assert!(m.bytes < baseline.bytes);
    assert!(m.mean_batch_occupancy() > 1.0);
    assert_eq!(m.tuples_stored, baseline.tuples_stored);
    assert_eq!(m.derivations, baseline.derivations);
    for loc in per_tuple.engine().locations().to_vec() {
        let mut want: Vec<Tuple> = per_tuple
            .query_ordered(&loc, "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let mut got: Vec<Tuple> = batched
            .query_ordered(&loc, "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        want.sort_by_key(|t| t.to_string());
        got.sort_by_key(|t| t.to_string());
        assert_eq!(got, want, "fixpoint at {loc}");
    }
}

/// (c) Duplicate `(pred, row)` tuples inside one pending shipment frame are
/// deduplicated before signing: the receiver's row→seq map would absorb
/// them anyway, so shipping them only wasted signature bytes and bandwidth.
#[test]
fn in_frame_duplicates_are_deduped_before_signing() {
    // Both source facts project to the same head row `fwd(@b,1)`.
    let build = |config: EngineConfig| {
        SecureNetwork::builder()
            .program_text("f1 fwd(@D,X) :- src(@S,X,D,T).")
            .unwrap()
            .locations(vec![str_val("a"), str_val("b")])
            .config(config.with_cost_model(CostModel::zero_cpu()))
            .fact(
                str_val("a"),
                Tuple::new(
                    "src",
                    vec![str_val("a"), Value::Int(1), str_val("b"), Value::Int(10)],
                ),
            )
            .fact(
                str_val("a"),
                Tuple::new(
                    "src",
                    vec![str_val("a"), Value::Int(1), str_val("b"), Value::Int(20)],
                ),
            )
            .build()
            .unwrap()
    };

    // Per-tuple mode ships (and signs) the duplicate, only for the
    // receiver to drop it.
    let mut per_tuple = build(EngineConfig::sendlog());
    let baseline = per_tuple.run().unwrap();
    assert_eq!(baseline.derivations, 2);
    assert_eq!(baseline.messages, 2);
    assert_eq!(baseline.signatures, 2);

    // Batched mode dedups inside the pending frame: one tuple, one
    // signature, one frame.
    let mut batched = build(EngineConfig::sendlog().with_batching());
    let m = batched.run().unwrap();
    assert_eq!(m.derivations, 2, "both rule firings still happen");
    assert_eq!(m.frames, 1);
    assert_eq!(m.batched_tuples, 1, "the duplicate never hit the wire");
    assert_eq!(m.signatures, 1);
    assert_eq!(m.auth_bytes * 2, baseline.auth_bytes);
    assert!(m.bytes < baseline.bytes);
    assert_eq!(
        ordered(&batched, "b", "fwd"),
        ordered(&per_tuple, "b", "fwd")
    );
    assert_eq!(ordered(&batched, "b", "fwd"), vec!["fwd(b,1)"]);
}

/// Self-joins derive identically under batching: each delta row only joins
/// rows inserted no later than itself (the store seq caps visibility), so
/// batch siblings are not double-joined and the derivation count — which
/// pipelined `a_COUNT`/`a_SUM` aggregates observe — matches per-tuple
/// evaluation exactly.
#[test]
fn self_joins_do_not_double_derive_across_batch_siblings() {
    let build = |config: EngineConfig| {
        let mut builder = SecureNetwork::builder()
            .program_text("t1 two(@X,Y,Z) :- e(@X,Y), e(@X,Z).\nc1 cnt(@X,a_COUNT<Y>) :- e(@X,Y).")
            .unwrap()
            .locations(vec![str_val("a")])
            .config(config.with_cost_model(CostModel::zero_cpu()));
        for i in 0..3 {
            builder = builder.fact(
                str_val("a"),
                Tuple::new("e", vec![str_val("a"), Value::Int(i)]),
            );
        }
        builder.build().unwrap()
    };
    let mut per_tuple = build(EngineConfig::ndlog());
    let baseline = per_tuple.run().unwrap();
    // All 3 e-rows land in one delta batch; without the seq visibility cap
    // each row would also join its later siblings and over-derive.
    let mut batched = build(EngineConfig::ndlog().with_batching());
    let m = batched.run().unwrap();
    assert_eq!(m.derivations, baseline.derivations);
    assert_eq!(m.tuples_stored, baseline.tuples_stored);
    assert_eq!(ordered(&batched, "a", "two").len(), 9);
    // The pipelined count converges to the same value in both modes.
    let count_of = |net: &SecureNetwork| {
        net.query_ordered(&str_val("a"), "cnt")
            .into_iter()
            .map(|(t, _)| t.values[1].clone())
            .max_by_key(|v| v.as_int())
            .unwrap()
    };
    assert_eq!(count_of(&batched), count_of(&per_tuple));
    assert_eq!(count_of(&batched), Value::Int(3));
}

/// The cap is hard: a batch that already holds `max_batch_tuples` rows —
/// including one sealed at creation under a cap of 1 — never accepts
/// another, even when several distinct head tuples land on the same
/// `(src, dst, pred, window)` key.
#[test]
fn max_batch_tuples_is_a_hard_per_frame_cap() {
    // Two distinct head tuples for the same frame key, derived in the same
    // window from facts inserted at time zero.
    let mut net = SecureNetwork::builder()
        .program_text("f1 fwd(@D,X) :- src(@S,X,D).")
        .unwrap()
        .locations(vec![str_val("a"), str_val("b")])
        .config(
            EngineConfig::sendlog()
                .with_batching()
                .with_max_batch_tuples(1)
                .with_cost_model(CostModel::zero_cpu()),
        )
        .fact(
            str_val("a"),
            Tuple::new("src", vec![str_val("a"), Value::Int(1), str_val("b")]),
        )
        .fact(
            str_val("a"),
            Tuple::new("src", vec![str_val("a"), Value::Int(2), str_val("b")]),
        )
        .build()
        .unwrap();
    let m = net.run().unwrap();
    assert_eq!(m.batched_tuples, 2);
    assert_eq!(m.frames, 2, "a cap of 1 must never co-batch two tuples");
    assert_eq!(m.signatures, 2);
    assert_eq!(ordered(&net, "b", "fwd"), vec!["fwd(b,1)", "fwd(b,2)"]);
}

/// A capped batch seals early: later tuples of the same window open a new
/// frame at the same flush time, so every tuple still ships exactly once.
#[test]
fn max_batch_tuples_seals_frames_early() {
    let mut per_tuple = figure1(EngineConfig::sendlog());
    let baseline = per_tuple.run().unwrap();

    let mut capped = figure1(
        EngineConfig::sendlog()
            .with_batching()
            .with_max_batch_tuples(1),
    );
    let m = capped.run().unwrap();
    // Cap 1 means one tuple per frame again — but flushed on window
    // boundaries, so the tuple count is preserved.
    assert_eq!(m.batched_tuples, baseline.messages);
    assert_eq!(m.frames, m.batched_tuples);
    assert_eq!(m.signatures, m.frames);
    assert_eq!(m.tuples_stored, baseline.tuples_stored);
}
