//! Integration tests for the deterministic flight recorder (`pasn-trace`):
//! trace events are recorded in simulated time, reconstruct the transport
//! counters exactly, never perturb a run, and are bit-identical across
//! worker-pool sizes — the trace doubles as a determinism oracle.

use pasn::prelude::*;
use pasn::workload;

fn reachability_30(config: EngineConfig) -> SecureNetwork {
    SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(workload::evaluation_topology(30, 7))
        .config(config)
        .build()
        .unwrap()
}

/// The acceptance bar of the tentpole: on the lossy N=30 session
/// deployment, the frame-lifecycle events reconstruct every transport
/// counter exactly — each drop, duplicate, retransmission and ack in the
/// trace corresponds one to one with the `RunMetrics` totals.
#[test]
fn lossy_trace_reconstructs_transport_counters() {
    let mut net = reachability_30(
        EngineConfig::sendlog_session()
            .with_cost_model(CostModel::zero_cpu())
            .with_batching()
            .with_fault_plan(FaultPlan::new(41))
            .with_tracing(TraceConfig::new()),
    );
    let metrics = net.run().unwrap();
    assert!(metrics.frames_dropped > 0, "the fault plan must bite");
    let trace = net.trace().expect("tracing enabled");

    let cycles = trace.link_lifecycles();
    let total = |f: fn(&pasn_engine::LinkLifecycle) -> u64| cycles.iter().map(f).sum::<u64>();
    assert_eq!(total(|c| c.dropped), metrics.frames_dropped);
    assert_eq!(total(|c| c.duplicated), metrics.frames_duplicated);
    assert_eq!(total(|c| c.retransmits), metrics.retransmits);
    assert_eq!(total(|c| c.acks), metrics.acks);
    assert_eq!(total(|c| c.shipped), metrics.frames);
    assert_eq!(
        total(|c| c.delivered),
        metrics.frames,
        "the reliability layer must deliver every frame exactly once"
    );
    assert_eq!(total(|c| c.dead), 0, "no frame may exhaust its budget");

    // The TraceQuery filters: link scoping and inclusive time windows.
    let busiest = cycles
        .iter()
        .max_by_key(|c| c.shipped)
        .expect("frames were shipped");
    let (src, dst) = busiest.link;
    let on_link = trace.query().link(src, dst).count();
    assert!(on_link > 0);
    assert!(trace.query().link(src, dst).between(0, u64::MAX).count() == on_link);
    let full = trace.query().between(0, u64::MAX).count();
    assert_eq!(full, trace.len());
    let events = trace.query().link(src, dst).events();
    assert!(events.iter().all(|e| e.kind.link() == Some((src, dst))));

    // The Perfetto export carries every lifecycle stage as an args.kind.
    let json = trace.to_chrome_json();
    for kind in ["\"kind\":\"ship\"", "\"kind\":\"drop\"", "\"kind\":\"ack\""] {
        assert!(json.contains(kind), "export must contain {kind}");
    }
}

/// Tracing is observation only: the traced run's counters, fixpoint and
/// stored orderings are bit-identical to the untraced run.
#[test]
fn tracing_never_perturbs_the_run() {
    let config = || {
        EngineConfig::sendlog_session()
            .with_cost_model(CostModel::zero_cpu())
            .with_batching()
    };
    let mut plain_net = reachability_30(config());
    let plain = plain_net.run().unwrap();
    let mut traced_net = reachability_30(config().with_tracing(TraceConfig::new()));
    let traced = traced_net.run().unwrap();

    let mut plain_cmp = plain.clone();
    let mut traced_cmp = traced.clone();
    // Host wall time is the one legitimately nondeterministic field.
    plain_cmp.wall_clock = Default::default();
    traced_cmp.wall_clock = Default::default();
    assert_eq!(traced_cmp, plain_cmp, "tracing perturbed a counter");

    for loc in plain_net.engine().locations().to_vec() {
        let want: Vec<Tuple> = plain_net
            .query_ordered(&loc, "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let got: Vec<Tuple> = traced_net
            .query_ordered(&loc, "reachable")
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        assert_eq!(got, want, "tracing changed insertion order at {loc}");
    }
}

/// The trace-as-oracle property: the full Chrome/Perfetto export — every
/// event, every span, byte for byte — is identical between the sequential
/// schedule and a four-worker pool.
#[test]
fn trace_is_bit_identical_across_worker_counts() {
    let export = |workers: usize| {
        let mut net = reachability_30(
            EngineConfig::ndlog()
                .with_batching()
                .with_workers(workers)
                .with_tracing(TraceConfig::new()),
        );
        net.run().unwrap();
        net.trace().expect("tracing enabled").to_chrome_json()
    };
    let sequential = export(1);
    let pooled = export(4);
    assert!(
        sequential.contains("\"kind\":\"wave\""),
        "wave spans must be recorded"
    );
    assert_eq!(pooled, sequential, "trace diverged across worker counts");
}

/// Every derivation in the run is attributed to a rule firing in the
/// trace, and the hot-rule profile aggregates them deterministically.
#[test]
fn hot_rule_profile_attributes_all_derivations() {
    let mut net = reachability_30(EngineConfig::ndlog().with_tracing(TraceConfig::new()));
    let metrics = net.run().unwrap();
    let trace = net.trace().expect("tracing enabled");
    let mut fired = 0u64;
    let mut cpu = 0u64;
    for event in trace.events() {
        if let TraceEventKind::RuleFire {
            derived, cpu_us, ..
        } = event.kind
        {
            fired += u64::from(derived);
            cpu += cpu_us;
        }
    }
    assert_eq!(fired, metrics.derivations, "unattributed derivations");
    assert!(cpu > 0, "the paper cost model charges join probes");
    let profile = trace.hot_rules(10);
    assert!(!profile.is_empty());
    assert_eq!(profile.iter().map(|p| p.derived).sum::<u64>(), fired);
    assert!(
        profile.windows(2).all(|w| w[0].cpu_us >= w[1].cpu_us),
        "profile must be sorted by CPU, descending"
    );
}

/// Gauge samples land exactly on configured simulated-time boundaries, in
/// order, and observe live state.
#[test]
fn gauge_samples_land_on_interval_boundaries() {
    let interval = 200u64;
    let mut net = reachability_30(
        EngineConfig::ndlog().with_tracing(TraceConfig::new().with_gauge_interval_us(interval)),
    );
    net.run().unwrap();
    let trace = net.trace().expect("tracing enabled");
    let samples: Vec<(u64, u64)> = trace
        .events()
        .filter_map(|e| match e.kind {
            TraceEventKind::Gauge { store_bytes, .. } => Some((e.at_us, store_bytes)),
            _ => None,
        })
        .collect();
    assert!(!samples.is_empty(), "the run must cross a sample boundary");
    assert!(samples.iter().all(|&(at, _)| at % interval == 0));
    assert!(
        samples.windows(2).all(|w| w[0].0 < w[1].0),
        "samples must be strictly ordered"
    );
    assert!(
        samples.iter().any(|&(_, bytes)| bytes > 0),
        "mid-run store residency must be observed"
    );
}

/// The ring-buffer mode keeps the most recent events, counts evictions,
/// and still exports cleanly.
#[test]
fn ring_buffer_bounds_long_runs() {
    let mut net =
        reachability_30(EngineConfig::ndlog().with_tracing(TraceConfig::new().with_ring(64)));
    net.run().unwrap();
    let trace = net.trace().expect("tracing enabled");
    assert_eq!(trace.len(), 64);
    assert!(trace.dropped_events() > 0);
    let json = trace.to_chrome_json();
    assert!(json.ends_with(&format!("],\"droppedEvents\":{}}}", trace.dropped_events())));
}
