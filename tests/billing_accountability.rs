//! Diverse billing over accountability data (the introduction's billing use
//! case): charges follow the provenance-attributed traffic of each
//! principal, and different principals can be on different plans.

use pasn::accountability::AccountabilityReport;
use pasn::billing::{BillingRun, RatePlan};
use pasn::prelude::*;
use pasn::workload;
use std::collections::HashMap;

fn run_best_path(n: u32, seed: u64) -> SecureNetwork {
    let topology = workload::evaluation_topology(n, seed);
    let mut config = SystemVariant::SeNDLog.config();
    config.cost_model = CostModel::zero_cpu();
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology)
        .config(config)
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

#[test]
fn charges_track_attributed_bytes() {
    let net = run_best_path(10, 31);
    let report = AccountabilityReport::collect(&net);
    assert!(report.total_bytes() > 0);

    let plan = RatePlan::flat("standard", 1.0);
    let run = BillingRun::compute(&report, &plan, &HashMap::new());
    assert_eq!(run.invoices.len(), report.usage.len());

    // Total revenue equals the flat rate applied to the total attributed
    // traffic (within floating-point tolerance).
    let expected = report.total_bytes() as f64 / 1_000_000.0;
    assert!((run.total() - expected).abs() < 1e-6);

    // The biggest sender pays the biggest bill under a uniform plan.
    let top = &report.usage[0];
    let top_invoice = run.invoice_for(&top.location).unwrap();
    assert!(run
        .invoices
        .iter()
        .all(|i| i.amount <= top_invoice.amount + 1e-12));
}

#[test]
fn diverse_plans_change_the_ranking_but_not_the_attribution() {
    let net = run_best_path(8, 17);
    let report = AccountabilityReport::collect(&net);
    let standard = RatePlan::flat("standard", 1.0);

    // Put the *lightest* sender on a plan ten times more expensive.
    let lightest = report.usage.last().unwrap().location.clone();
    let mut overrides = HashMap::new();
    overrides.insert(lightest.clone(), RatePlan::flat("premium", 1000.0));

    let uniform = BillingRun::compute(&report, &standard, &HashMap::new());
    let diverse = BillingRun::compute(&report, &standard, &overrides);

    // Attribution (bytes) is identical across runs — only prices change.
    for invoice in &diverse.invoices {
        let other = uniform.invoice_for(&invoice.principal).unwrap();
        assert_eq!(invoice.bytes, other.bytes);
    }
    assert!(diverse.total() > uniform.total());
    assert_eq!(diverse.invoice_for(&lightest).unwrap().plan, "premium");
}

#[test]
fn tiered_plans_spare_light_senders() {
    let net = run_best_path(9, 7);
    let report = AccountabilityReport::collect(&net);
    // Every principal's usage fits inside the included volume of a generous
    // tiered plan, so everyone pays exactly the flat fee.
    let generous = RatePlan::tiered("generous", 5.0, u64::MAX, 100.0);
    let run = BillingRun::compute(&report, &generous, &HashMap::new());
    for invoice in &run.invoices {
        assert!((invoice.amount - 5.0).abs() < 1e-9);
    }
    assert!((run.total() - 5.0 * report.usage.len() as f64).abs() < 1e-6);
}
