//! Correctness of the Best-Path evaluation query: the distributed fixpoint
//! must agree with a centralized Dijkstra oracle, for every system variant
//! (authentication and provenance must not change query results), and the
//! reported path vectors must be real paths with the reported cost.

use pasn::prelude::*;
use pasn::workload;
use std::collections::HashMap;

fn run_best_path(n: u32, seed: u64, variant: SystemVariant) -> (Topology, SecureNetwork) {
    let topology = workload::evaluation_topology(n, seed);
    let mut config = variant.config();
    config.cost_model = CostModel::zero_cpu();
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::best_path())
        .topology(topology.clone())
        .config(config)
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    (topology, net)
}

fn best_costs(net: &SecureNetwork, src: NodeId) -> HashMap<u32, i64> {
    let mut best: HashMap<u32, i64> = HashMap::new();
    for (t, _) in net.query(&Value::Addr(src.0), "bestPathCost") {
        let dst = t.values[1].as_addr().expect("addr");
        let cost = t.values[2].as_int().expect("int");
        let entry = best.entry(dst).or_insert(i64::MAX);
        *entry = (*entry).min(cost);
    }
    best
}

#[test]
fn best_path_costs_match_dijkstra_for_every_variant() {
    for variant in SystemVariant::ALL {
        let (topology, net) = run_best_path(9, 17, variant);
        // The Best-Path joins have bound key columns (the localized rules
        // share location and destination variables), so the correct results
        // below are produced through the secondary-index probe path, not by
        // scanning relations.
        let metrics = net.engine().metrics();
        assert!(
            metrics.index_probes > 0 && metrics.index_hits > 0,
            "{}: joins must take the index path ({} probes / {} hits)",
            variant.name(),
            metrics.index_probes,
            metrics.index_hits
        );
        for src in topology.nodes() {
            let oracle = topology.shortest_path_costs(*src);
            let measured = best_costs(&net, *src);
            for dst in topology.nodes() {
                if dst == src {
                    continue;
                }
                assert_eq!(
                    measured.get(&dst.0).copied(),
                    Some(oracle[dst] as i64),
                    "{}: best path {src}->{dst}",
                    variant.name()
                );
            }
        }
    }
}

#[test]
fn best_path_vectors_are_real_paths_with_matching_cost() {
    let (topology, net) = run_best_path(10, 5, SystemVariant::NDLog);
    let link_cost: HashMap<(u32, u32), i64> = topology
        .links()
        .iter()
        .map(|l| ((l.src.0, l.dst.0), l.cost as i64))
        .collect();

    let mut checked = 0;
    for (loc, tuple, _) in net.query_all("bestPath") {
        let src = loc.as_addr().expect("addr location");
        let dst = tuple.values[1].as_addr().unwrap();
        let path = tuple.values[2].as_list().expect("path vector");
        let cost = tuple.values[3].as_int().unwrap();

        // The path starts at the source and ends at the destination.
        assert_eq!(path.first().and_then(Value::as_addr), Some(src));
        assert_eq!(path.last().and_then(Value::as_addr), Some(dst));
        // Consecutive hops are actual links, and their costs sum to the
        // reported cost.
        let mut sum = 0i64;
        for hop in path.windows(2) {
            let a = hop[0].as_addr().unwrap();
            let b = hop[1].as_addr().unwrap();
            let c = link_cost
                .get(&(a, b))
                .unwrap_or_else(|| panic!("hop {a}->{b} is not a link"));
            sum += c;
        }
        assert_eq!(sum, cost, "path cost of {tuple}");
        // No loops: every node appears at most once.
        let mut nodes: Vec<u32> = path.iter().filter_map(Value::as_addr).collect();
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), path.len(), "simple path {tuple}");
        checked += 1;
    }
    assert!(
        checked > 20,
        "a meaningful number of best paths were checked"
    );
}

#[test]
fn condensed_provenance_of_best_paths_names_only_on_path_principals() {
    let (_, net) = run_best_path(8, 11, SystemVariant::SeNDLogProv);
    let evaluator = TrustEvaluator::new(net.var_table(), Default::default());
    let mut checked = 0;
    for (loc, tuple, meta) in net.query_all("bestPath") {
        let origins = evaluator.origins(&meta.tag);
        assert!(!origins.is_empty(), "bestPath at {loc} has provenance");
        // The asserting principals can only be nodes that contributed links —
        // i.e. nodes on some path to the destination; in particular the
        // source itself must be among them.
        let src = loc.as_addr().unwrap();
        assert!(
            origins.contains(&src),
            "{tuple} at {loc}: origins {origins:?} must include the source"
        );
        checked += 1;
    }
    assert!(checked > 10);
}
