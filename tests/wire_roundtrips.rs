//! Property tests on the wire formats that cross node boundaries: whatever a
//! node serialises (tuples, `says` proofs, length-prefixed frames), the
//! receiving node must decode back bit-for-bit.  The bandwidth figures of the
//! evaluation (Figure 4) are computed from these encodings, so their length
//! accounting is checked here too.

use bytes::{Bytes, BytesMut};
use pasn_crypto::{SaysLevel, SaysProof};
use pasn_datalog::Value;
use pasn_engine::Tuple;
use pasn_net::wire;
use proptest::prelude::*;

/// A strategy over scalar values (everything except lists).
fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        any::<u32>().prop_map(Value::Addr),
        "[a-zA-Z0-9_.:@-]{0,24}".prop_map(Value::Str),
    ]
}

/// A strategy over values including one level of list nesting (the shape the
/// path-vector programs produce).
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        scalar_value(),
        prop::collection::vec(scalar_value(), 0..6).prop_map(Value::List),
    ]
}

proptest! {
    #[test]
    fn tuple_encoding_round_trips(
        predicate in "[a-z][a-zA-Z0-9]{0,12}",
        values in prop::collection::vec(value(), 0..6),
    ) {
        let tuple = Tuple::new(predicate, values);
        let encoded = tuple.encode();
        prop_assert_eq!(encoded.len(), tuple.encoded_len());
        let (decoded, consumed) = Tuple::decode(&encoded).expect("well-formed encoding decodes");
        prop_assert_eq!(consumed, encoded.len());
        prop_assert_eq!(decoded, tuple);
    }

    #[test]
    fn tuple_decoding_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Arbitrary bytes either decode into some tuple or are rejected —
        // never a panic, and never a read past the buffer.
        if let Some((_, consumed)) = Tuple::decode(&bytes) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    #[test]
    fn says_proofs_round_trip(kind in 0u8..3, payload in prop::collection::vec(any::<u8>(), 0..96)) {
        let proof = match kind {
            0 => SaysProof::Cleartext,
            1 => {
                let mut tag = [0u8; 32];
                for (i, b) in payload.iter().take(32).enumerate() {
                    tag[i] = *b;
                }
                SaysProof::Hmac(tag)
            }
            _ => SaysProof::Rsa(payload.clone()),
        };
        let bytes = proof.to_bytes();
        let (decoded, consumed) = SaysProof::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.level(), proof.level());
        prop_assert_eq!(decoded, proof);
    }

    #[test]
    fn length_prefixed_frames_round_trip(payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 0..8)) {
        let mut buf = BytesMut::new();
        for p in &payloads {
            wire::put_len_prefixed(&mut buf, p);
        }
        let total: usize = payloads.iter().map(|p| wire::len_prefixed_size(p.len())).sum();
        prop_assert_eq!(buf.len(), total);

        let mut cursor: Bytes = buf.freeze();
        for p in &payloads {
            let frame = wire::get_len_prefixed(&mut cursor).expect("frame present");
            prop_assert_eq!(frame.as_ref(), p.as_slice());
        }
        prop_assert!(wire::get_len_prefixed(&mut cursor).is_none());
    }

    #[test]
    fn proof_levels_are_totally_ordered_by_strength(payload in prop::collection::vec(any::<u8>(), 1..32)) {
        let cleartext = SaysProof::Cleartext;
        let hmac = SaysProof::Hmac([0u8; 32]);
        let rsa = SaysProof::Rsa(payload);
        prop_assert!(cleartext.level() < hmac.level());
        prop_assert!(hmac.level() < rsa.level());
        prop_assert_eq!(cleartext.level(), SaysLevel::Cleartext);
        // Wire length grows with strength for any non-trivial signature.
        prop_assert!(cleartext.to_bytes().len() < hmac.to_bytes().len());
    }
}
