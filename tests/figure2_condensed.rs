//! Integration test for Figure 2: the SeNDlog derivation with authenticated
//! communication and condensed provenance.  The paper's worked example —
//! `reachable(a,c)` carries `<a + a*b>` which condenses to `<a>`, so trusting
//! `a` suffices and the trust level is `max(2, min(2,1)) = 2` — is checked
//! end to end through the public API.

use pasn::prelude::*;
use std::collections::HashMap;

fn figure2_network() -> SecureNetwork {
    let mut config = EngineConfig::sendlog_prov().with_cost_model(CostModel::zero_cpu());
    // Security levels from the paper's Section 4.5 example: a has level 2,
    // b has level 1.
    config = config.with_security_level(0, 2).with_security_level(1, 1);
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_ndlog())
        .topology(Topology::paper_figure1())
        .config(config)
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    net
}

#[test]
fn condensed_provenance_collapses_a_plus_a_times_b_to_a() {
    let net = figure2_network();
    let tuple = Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(2)]);
    let rendered = net
        .render_provenance(&Value::Addr(0), &tuple)
        .expect("annotation recorded");
    assert_eq!(rendered, "<p0>", "a + a*b condenses to a");
}

#[test]
fn every_remote_tuple_was_signed_and_verified() {
    let net = figure2_network();
    let metrics = net.engine().metrics();
    assert!(metrics.messages > 0);
    assert_eq!(metrics.signatures, metrics.messages);
    assert_eq!(metrics.verifications, metrics.messages);
    assert_eq!(metrics.verification_failures, 0);
    // RSA proofs dominate the authentication bytes.
    assert!(metrics.auth_bytes >= 64 * metrics.messages);
}

#[test]
fn trust_policies_follow_the_paper_example() {
    let net = figure2_network();
    let levels: HashMap<u32, u8> = [(0u32, 2u8), (1, 1), (2, 1)].into_iter().collect();
    let evaluator = TrustEvaluator::new(net.var_table(), levels);

    let tuple = Tuple::new("reachable", vec![Value::Addr(0), Value::Addr(2)]);
    let (_, meta) = net
        .query(&Value::Addr(0), "reachable")
        .into_iter()
        .find(|(t, _)| *t == tuple)
        .expect("reachable(a,c) stored at a");

    // Trusting a alone accepts the tuple; trusting b alone does not.
    let trust_a = TrustPolicy::TrustedPrincipals([0u32].into_iter().collect());
    let trust_b = TrustPolicy::TrustedPrincipals([1u32].into_iter().collect());
    assert!(evaluator.evaluate(&meta.tag, &trust_a).is_accept());
    assert!(!evaluator.evaluate(&meta.tag, &trust_b).is_accept());

    // Quantifiable provenance: trust level max(2, min(2,1)) = 2.
    assert!(evaluator
        .evaluate(&meta.tag, &TrustPolicy::MinTrustLevel(2))
        .is_accept());
    assert!(!evaluator
        .evaluate(&meta.tag, &TrustPolicy::MinTrustLevel(3))
        .is_accept());

    // The condensed origins are exactly {a}.
    assert_eq!(evaluator.origins(&meta.tag), [0u32].into_iter().collect());
}

#[test]
fn sendlog_surface_program_produces_equivalent_routes() {
    // Running the actual SeNDlog-syntax program (context blocks + says)
    // produces the same reachability relation at a as the NDlog form.
    let mut net = SecureNetwork::builder()
        .program(pasn::programs::reachability_sendlog())
        .topology(Topology::paper_figure1())
        .config(EngineConfig::sendlog().with_cost_model(CostModel::zero_cpu()))
        .build()
        .expect("program compiles");
    net.run().expect("fixpoint reached");
    let mut at_a: Vec<Vec<Value>> = net
        .query(&Value::Addr(0), "reachable")
        .into_iter()
        .map(|(t, _)| t.values)
        .collect();
    at_a.sort();
    assert_eq!(
        at_a,
        vec![
            vec![Value::Addr(0), Value::Addr(1)],
            vec![Value::Addr(0), Value::Addr(2)],
        ]
    );
}
